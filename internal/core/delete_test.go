package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestDecideDeleteTranslatable(t *testing.T) {
	p, v, syms := edmView(t)
	// Delete (ed, toys): (flo, toys) keeps the toys complement row alive.
	tup := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	d, err := p.DecideDelete(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable || d.Reason != ReasonOK {
		t.Fatalf("decision = %+v, want translatable", d)
	}
}

func TestDecideDeleteLastSharer(t *testing.T) {
	p, v, syms := edmView(t)
	// Delete (bob, tools): bob is the only tools employee; removing him
	// would delete the (tools, tim) complement row.
	tup := relation.Tuple{syms.Const("bob"), syms.Const("tools")}
	d, err := p.DecideDelete(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonNoSharedMatch {
		t.Fatalf("decision = %+v, want NoSharedMatch", d)
	}
}

func TestDecideDeleteIdentity(t *testing.T) {
	p, v, syms := edmView(t)
	tup := relation.Tuple{syms.Const("zed"), syms.Const("toys")}
	d, err := p.DecideDelete(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable || d.Reason != ReasonIdentity {
		t.Fatalf("decision = %+v, want identity", d)
	}
}

func TestApplyDeleteEDM(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
		r.InsertVals(syms.Const(row[0]), syms.Const(row[1]), syms.Const(row[2]))
	}
	tup := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	out, err := p.ApplyDelete(r, tup)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("result has %d tuples, want 2", out.Len())
	}
	if out.Contains(relation.Tuple{syms.Const("ed"), syms.Const("toys"), syms.Const("mo")}) {
		t.Error("deleted tuple still present")
	}
	if !out.Project(p.ComplementAttrs()).Equal(r.Project(p.ComplementAttrs())) {
		t.Error("complement changed")
	}
}

func TestApplyDeleteLastSharerErrors(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("bob"), syms.Const("tools"), syms.Const("tim"))
	tup := relation.Tuple{syms.Const("bob"), syms.Const("tools")}
	if _, err := p.ApplyDelete(r, tup); err == nil {
		t.Error("ApplyDelete changed the complement without error")
	}
}

func TestApplyDeleteIdentity(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	out, err := p.ApplyDelete(r, relation.Tuple{syms.Const("zed"), syms.Const("toys")})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Error("identity delete changed the database")
	}
}

// bruteDeleteTranslatable mirrors the definition for deletions: for every
// legal completion R of V, the deletion translation must keep the
// complement constant and implement the view update.
func bruteDeleteTranslatable(p *Pair, v *relation.Relation, t relation.Tuple, syms *value.Symbols) bool {
	if !v.Contains(t) {
		return true
	}
	// Condition (a): some other row shares the pivot; condition (b) is
	// schema-level. A brute check on completions: deleting t's rows must
	// leave π_Y unchanged for every legal completion; equivalently some
	// other view row shares t[X∩Y] and Σ ⊨ X∩Y → Y so their Y parts
	// coincide. We verify on the canonical completion built by padding
	// with distinct fresh constants then repairing via DecideInsert's
	// machinery is overkill here; instead check directly on view rows.
	found := false
	for _, row := range v.Tuples() {
		if row.Equal(t) {
			continue
		}
		if agreesOn(row, t, v, p.Shared()) {
			found = true
			break
		}
	}
	keyOfY, keyOfX := SharedIsKeyOf(p.Schema(), p.ViewAttrs(), p.ComplementAttrs())
	return found && keyOfY && !keyOfX
}

// bruteDeleteByCompletions decides deletion translatability from the
// definition: for every legal completion R of V, T_u[R] = R − t*π_Y(R)
// must keep π_Y constant and implement the view update (legality is
// automatic for FDs under deletion).
func bruteDeleteByCompletions(p *Pair, v *relation.Relation, t relation.Tuple, syms *value.Symbols) (translatable, anyLegal bool) {
	s := p.Schema()
	u := s.Universe()
	outX := u.All().Diff(p.ViewAttrs())
	outIDs := outX.IDs()
	cells := v.Len() * len(outIDs)
	domainSet := map[value.Value]bool{}
	for _, row := range v.Tuples() {
		for _, val := range row {
			domainSet[val] = true
		}
	}
	var domain []value.Value
	for val := range domainSet {
		domain = append(domain, val)
	}
	for i := 0; i < cells; i++ {
		domain = append(domain, syms.Const("fresh_del_"+string(rune('a'+i))))
	}
	d := len(domain)
	assign := make([]int, cells)
	translatable = true
	for {
		r := relation.New(u.All())
		k := 0
		for _, row := range v.Tuples() {
			nt := make(relation.Tuple, u.Size())
			for c := 0; c < u.Size(); c++ {
				if vc := v.Col(attr.ID(c)); vc >= 0 {
					nt[c] = row[vc]
				} else {
					nt[c] = domain[assign[k]]
					k++
				}
			}
			r.Insert(nt)
		}
		if legal, _ := s.Legal(r); legal && r.Project(p.ViewAttrs()).Equal(v) {
			anyLegal = true
			vy := r.Project(p.ComplementAttrs())
			doomed := relation.Singleton(p.ViewAttrs(), t).Join(vy)
			tu := r.Clone()
			for _, dt := range doomed.Tuples() {
				tu.Delete(dt)
			}
			want := v.Clone()
			want.Delete(t)
			if !tu.Project(p.ComplementAttrs()).Equal(vy) ||
				!tu.Project(p.ViewAttrs()).Equal(want) {
				return false, true
			}
		}
		i := 0
		for i < cells {
			assign[i]++
			if assign[i] < d {
				break
			}
			assign[i] = 0
			i++
		}
		if i == cells {
			break
		}
	}
	return translatable, anyLegal
}

// TestQuickDecideDeleteMatchesCompletions: E13 validation against the
// definition over legal completions.
func TestQuickDecideDeleteMatchesCompletions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, _, syms, ok := randomInsertCase(rng)
		if !ok || v.Len() == 0 {
			return true
		}
		tup := v.Tuple(rng.Intn(v.Len())).Clone()
		d, err := p.DecideDelete(v, tup)
		if err != nil {
			return false
		}
		brute, anyLegal := bruteDeleteByCompletions(p, v, tup, syms)
		if !anyLegal {
			return true // inconsistent views filtered by the generator anyway
		}
		return d.Translatable == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeleteMatchesTheorem8(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, _, syms, ok := randomInsertCase(rng)
		if !ok || v.Len() == 0 {
			return true
		}
		// Delete an existing tuple.
		tup := v.Tuple(rng.Intn(v.Len())).Clone()
		d, err := p.DecideDelete(v, tup)
		if err != nil {
			return false
		}
		return d.Translatable == bruteDeleteTranslatable(p, v, tup, syms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickApplyDeleteRoundTrip(t *testing.T) {
	// Inserting then deleting the same tuple restores the database
	// whenever both directions are translatable (the morphism property on
	// an invertible update pair).
	p, v, syms := edmView(t)
	_ = v
	u := p.Schema().Universe()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.New(u.All())
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			d := rng.Intn(2)
			dept, mgr := "toys", "mo"
			if d == 1 {
				dept, mgr = "tools", "tim"
			}
			r.InsertVals(syms.Const("emp"+string(rune('a'+i))), syms.Const(dept), syms.Const(mgr))
		}
		tup := relation.Tuple{syms.Const("newbie"), syms.Const("toys")}
		vi := r.Project(p.ViewAttrs())
		di, err := p.DecideInsert(vi, tup)
		if err != nil || !di.Translatable {
			return true
		}
		r2, err := p.ApplyInsert(r, tup)
		if err != nil {
			return false
		}
		dd, err := p.DecideDelete(r2.Project(p.ViewAttrs()), tup)
		if err != nil || !dd.Translatable {
			return true
		}
		r3, err := p.ApplyDelete(r2, tup)
		if err != nil {
			return false
		}
		return r3.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecideDeleteValidation(t *testing.T) {
	p, v, syms := edmView(t)
	if _, err := p.DecideDelete(v, relation.Tuple{syms.Const("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := relation.New(p.Schema().Universe().MustSet("E"))
	if _, err := p.DecideDelete(bad, relation.Tuple{syms.Const("x")}); err == nil {
		t.Error("wrong view attrs accepted")
	}
}
