package core

import (
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// This file implements the paper's §6 further-research item (2): views of
// the form σ_P π_X — a *restriction* of a projection — for predicates P
// that test view attributes against constants. The paper suggests the
// complement (σ_¬P π_X, π_Y); under that complement, an update through
// the restricted view may only touch database rows whose X-projection
// satisfies P, and the machinery of §3 carries over: the σ_¬P π_X part of
// the complement is untouched exactly when every inserted/deleted view
// tuple satisfies P, and π_Y stays constant by the usual translation.

// Predicate is a restriction predicate on view tuples. Implementations
// must be pure functions of the tuple.
type Predicate interface {
	// Eval reports whether the view tuple (over the view's attribute
	// set, ascending order) satisfies the predicate.
	Eval(t relation.Tuple) bool
	// String renders the predicate for diagnostics.
	String() string
}

// EqConst is the predicate attribute = constant.
type EqConst struct {
	// Attr is the tested attribute; Col its column in the view layout.
	Attr  attr.ID
	Col   int
	Value value.Value
	// attrName and valueName are kept for diagnostics.
	attrName, valueName string
}

// NewEqConst builds an attribute = constant predicate for a view over x.
func NewEqConst(x attr.Set, id attr.ID, v value.Value, valueName string) (*EqConst, error) {
	if !x.Has(id) {
		return nil, fmt.Errorf("core: predicate attribute %d not in view %v", id, x)
	}
	col := 0
	for _, c := range x.IDs() {
		if c == id {
			break
		}
		col++
	}
	return &EqConst{Attr: id, Col: col, Value: v,
		attrName: x.Universe().Name(id), valueName: valueName}, nil
}

// Eval implements Predicate.
func (p *EqConst) Eval(t relation.Tuple) bool { return t[p.Col] == p.Value }

func (p *EqConst) String() string {
	return fmt.Sprintf("%s = %s", p.attrName, p.valueName)
}

// Not negates a predicate.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (n Not) Eval(t relation.Tuple) bool { return !n.P.Eval(t) }

func (n Not) String() string { return "¬(" + n.P.String() + ")" }

// And conjoins predicates.
type And []Predicate

// Eval implements Predicate.
func (a And) Eval(t relation.Tuple) bool {
	for _, p := range a {
		if !p.Eval(t) {
			return false
		}
	}
	return true
}

func (a And) String() string {
	out := ""
	for i, p := range a {
		if i > 0 {
			out += " ∧ "
		}
		out += p.String()
	}
	return out
}

// RestrictedPair is a view σ_P π_X with the complement (σ_¬P π_X, π_Y):
// updates through the restricted view must keep both the unrestricted
// rows and the Y-projection constant.
type RestrictedPair struct {
	pair *Pair
	pred Predicate
}

// NewRestrictedPair builds the restricted view over an existing
// complementary pair.
func NewRestrictedPair(p *Pair, pred Predicate) *RestrictedPair {
	return &RestrictedPair{pair: p, pred: pred}
}

// Pair returns the underlying projective pair.
func (rp *RestrictedPair) Pair() *Pair { return rp.pair }

// Predicate returns P.
func (rp *RestrictedPair) Predicate() Predicate { return rp.pred }

// Instance computes σ_P π_X(R).
func (rp *RestrictedPair) Instance(r *relation.Relation) *relation.Relation {
	return r.Project(rp.pair.x).Select(rp.pred.Eval)
}

// errOutsideRestriction is returned when a tuple does not satisfy P.
var errOutsideRestriction = errors.New("core: tuple outside the view restriction")

// DecideInsert decides translatability of inserting t into the restricted
// view, given the *full* projection instance v = π_X(R). The tuple must
// satisfy P (otherwise it is not a view tuple at all); the σ_¬P part of
// the complement is then untouched by construction, and the remaining
// conditions are exactly Theorem 3's against the unrestricted view.
func (rp *RestrictedPair) DecideInsert(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	if err := rp.pair.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if !rp.pred.Eval(t) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	return rp.pair.DecideInsert(v, t)
}

// DecideDelete is the deletion analogue of DecideInsert.
func (rp *RestrictedPair) DecideDelete(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	if err := rp.pair.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if !rp.pred.Eval(t) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	return rp.pair.DecideDelete(v, t)
}

// ApplyInsert translates the insertion on the database, additionally
// verifying that the σ_¬P part of the view stayed constant.
func (rp *RestrictedPair) ApplyInsert(r *relation.Relation, t relation.Tuple) (*relation.Relation, error) {
	if !rp.pred.Eval(t) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	before := r.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	out, err := rp.pair.ApplyInsert(r, t)
	if err != nil {
		return nil, err
	}
	after := out.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	if !after.Equal(before) {
		return nil, errors.New("core: restricted insert changed σ_¬P π_X")
	}
	return out, nil
}

// DecideReplace decides translatability of replacing t1 by t2 in the
// restricted view; both tuples must satisfy P.
func (rp *RestrictedPair) DecideReplace(v *relation.Relation, t1, t2 relation.Tuple) (*Decision, error) {
	if err := rp.pair.checkViewInstance(v); err != nil {
		return nil, err
	}
	if !rp.pred.Eval(t1) || !rp.pred.Eval(t2) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	return rp.pair.DecideReplace(v, t1, t2)
}

// ApplyReplace translates the replacement on the database, verifying
// σ_¬P π_X constancy.
func (rp *RestrictedPair) ApplyReplace(r *relation.Relation, t1, t2 relation.Tuple) (*relation.Relation, error) {
	if !rp.pred.Eval(t1) || !rp.pred.Eval(t2) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	before := r.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	out, err := rp.pair.ApplyReplace(r, t1, t2)
	if err != nil {
		return nil, err
	}
	after := out.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	if !after.Equal(before) {
		return nil, errors.New("core: restricted replace changed σ_¬P π_X")
	}
	return out, nil
}

// ApplyDelete translates the deletion on the database, verifying σ_¬P π_X
// constancy.
func (rp *RestrictedPair) ApplyDelete(r *relation.Relation, t relation.Tuple) (*relation.Relation, error) {
	if !rp.pred.Eval(t) {
		return nil, fmt.Errorf("%w: %v", errOutsideRestriction, rp.pred)
	}
	before := r.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	out, err := rp.pair.ApplyDelete(r, t)
	if err != nil {
		return nil, err
	}
	after := out.Project(rp.pair.x).Select(Not{rp.pred}.Eval)
	if !after.Equal(before) {
		return nil, errors.New("core: restricted delete changed σ_¬P π_X")
	}
	return out, nil
}
