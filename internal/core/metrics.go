package core

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// coreMetrics holds the resolved metric handles for session decisions.
type coreMetrics struct {
	decideTotal  *obs.Counter
	translatable *obs.Counter
	rejected     *obs.Counter
	applied      *obs.Counter
	// adopted counts applies satisfied by AdoptSpeculated — the
	// serving pipeline's pre-computed state passed re-validation and
	// the full decide/translate was skipped.
	adopted *obs.Counter
	// Decision-memoization accounting: the per-session (version, op)
	// decision cache and the schema-level Complementary/
	// MinimalComplement memo (see cache.go).
	decisionHits     *obs.Counter
	decisionMisses   *obs.Counter
	schemaMemoHits   *obs.Counter
	schemaMemoMisses *obs.Counter
	// Incremental-path accounting (incremental.go): decides/applies
	// satisfied per-delta, fallbacks to the full path, invalidations
	// and rebuilds of the maintained state, and the sizes of the base
	// deltas actually applied.
	incDecide     *obs.Counter
	incApply      *obs.Counter
	incFallback   *obs.Counter
	incInvalidate *obs.Counter
	incRebuild    *obs.Counter
	deltaPlus     *obs.Histogram
	deltaMinus    *obs.Histogram
	// Materialized-reader-view accounting (session.go): applies whose
	// view image advanced by a delta patch vs. full re-projections
	// forced by an invalidation.
	viewPatch   *obs.Counter
	viewRebuild *obs.Counter
	// decideNs and applyNs are indexed by UpdateKind.
	decideNs [3]*obs.Histogram
	applyNs  [3]*obs.Histogram
}

var (
	coremetrics atomic.Pointer[coreMetrics]
	coretracer  atomic.Pointer[obs.Tracer]
)

// SetMetrics installs (or, with nil, removes) the metrics sink for
// session decide/apply accounting.
func SetMetrics(s obs.Sink) {
	if s == nil {
		coremetrics.Store(nil)
		return
	}
	m := &coreMetrics{
		decideTotal:      s.Counter("core_decide_total"),
		translatable:     s.Counter("core_decide_translatable_total"),
		rejected:         s.Counter("core_decide_rejected_total"),
		applied:          s.Counter("core_apply_applied_total"),
		adopted:          s.Counter("core_apply_adopted_total"),
		decisionHits:     s.Counter("core_decision_cache_hits_total"),
		decisionMisses:   s.Counter("core_decision_cache_misses_total"),
		schemaMemoHits:   s.Counter("core_schema_memo_hits_total"),
		schemaMemoMisses: s.Counter("core_schema_memo_misses_total"),
		incDecide:        s.Counter("core_inc_decide_total"),
		incApply:         s.Counter("core_inc_apply_total"),
		incFallback:      s.Counter("core_inc_fallback_total"),
		incInvalidate:    s.Counter("core_inc_invalidate_total"),
		incRebuild:       s.Counter("core_inc_rebuild_total"),
		deltaPlus:        s.Histogram("core_delta_plus_size"),
		deltaMinus:       s.Histogram("core_delta_minus_size"),
		viewPatch:        s.Counter("core_view_patch_total"),
		viewRebuild:      s.Counter("core_view_rebuild_total"),
	}
	for _, k := range [...]UpdateKind{UpdateInsert, UpdateDelete, UpdateReplace} {
		m.decideNs[k] = s.Histogram("core_decide_" + k.String() + "_ns")
		m.applyNs[k] = s.Histogram("core_apply_" + k.String() + "_ns")
	}
	coremetrics.Store(m)
}

// SetTracer installs (or, with nil, removes) the span tracer for
// session operations: ApplyCtx opens an apply/<kind> root span with a
// nested decide/<kind> child (and a translate child for the mutation
// itself), so a trace shows where a slow update spent its time.
func SetTracer(t *obs.Tracer) {
	coretracer.Store(t)
}

// rootSpan opens a root span when tracing is on (the name is not even
// built otherwise).
func rootSpan(prefix string, kind UpdateKind) *obs.Span {
	tr := coretracer.Load()
	if tr == nil {
		return nil
	}
	return tr.Start(prefix + kind.String())
}

// childSpan opens a child of parent, which may be nil (no-op).
func childSpan(parent *obs.Span, prefix string, kind UpdateKind) *obs.Span {
	if parent == nil {
		// Fall back to a root span so DecideCtx traces even outside
		// ApplyCtx.
		return rootSpan(prefix, kind)
	}
	return parent.Child(prefix + kind.String())
}

// validKind reports whether k indexes the per-kind histogram arrays.
func validKind(k UpdateKind) bool {
	return k == UpdateInsert || k == UpdateDelete || k == UpdateReplace
}
