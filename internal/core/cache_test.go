package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func cacheFixture(t *testing.T) (*Session, *value.Symbols) {
	t.Helper()
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := MustSchema(u, sigma)
	pair := MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	sess, err := NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	return sess, syms
}

// TestDecisionCacheSeedAndHit: a decision seeded at the session's
// current version is consumed by decide as a cache hit with the same
// verdict; a seed at a stale version misses and decide recomputes.
func TestDecisionCacheSeedAndHit(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	sess, syms := cacheFixture(t)
	op := Insert(relation.Tuple{syms.Const("zed"), syms.Const("dept0")})

	// Cold decide: a miss that fills the cache.
	d1, err := sess.Decide(op)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sess.Decide(op)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("repeat decide at the same version did not hit the cache")
	}
	snap := reg.Snapshot()
	if snap.Counters["core_decision_cache_hits_total"] == 0 ||
		snap.Counters["core_decision_cache_misses_total"] == 0 {
		t.Errorf("hit/miss counters not maintained: %v", snap.Counters)
	}

	// Applying bumps the version, so the old entry no longer matches.
	if _, err := sess.Apply(op); err != nil {
		t.Fatal(err)
	}
	op2 := Insert(relation.Tuple{syms.Const("pat"), syms.Const("dept1")})
	seeded := &Decision{Translatable: true, Reason: ReasonIdentity}
	sess.SeedDecision(sess.ViewVersion(), op2, seeded)
	got, err := sess.Decide(op2)
	if err != nil {
		t.Fatal(err)
	}
	if got != seeded {
		t.Error("seed at the current version was not consumed")
	}

	// Invalidate wipes every seed.
	sess.SeedDecision(sess.ViewVersion(), op2, seeded)
	sess.InvalidateDecisions()
	got2, err := sess.Decide(op2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == seeded {
		t.Error("seed survived InvalidateDecisions")
	}

	// A stale-version seed is dead weight, not an answer.
	sess.InvalidateDecisions()
	sess.SeedDecision(sess.ViewVersion()+7, op2, seeded)
	got3, err := sess.Decide(op2)
	if err != nil {
		t.Fatal(err)
	}
	if got3 == seeded {
		t.Error("stale-version seed was consumed")
	}
}

// TestDecisionCacheEvictionBound: the sharded cache never exceeds its
// per-shard capacity no matter how many distinct keys are seeded.
func TestDecisionCacheEvictionBound(t *testing.T) {
	var c decisionCache
	d := &Decision{Translatable: true}
	const total = decisionShards * decisionShardCap * 3
	for i := 0; i < total; i++ {
		c.put(uint64(i), fmt.Sprintf("op%d", i), d)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n, ord := len(sh.memo), len(sh.order)
		sh.mu.Unlock()
		if n > decisionShardCap {
			t.Errorf("shard %d holds %d entries, cap %d", i, n, decisionShardCap)
		}
		if n != ord {
			t.Errorf("shard %d: map %d vs order %d out of step", i, n, ord)
		}
	}
}

// TestDecisionCacheConcurrent exercises concurrent seeding, reading,
// and clearing under -race: the cache is the only concurrency-safe part
// of a Session and must stay so.
func TestDecisionCacheConcurrent(t *testing.T) {
	var c decisionCache
	d := &Decision{Translatable: true}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("op%d", i%97)
				switch i % 3 {
				case 0:
					c.put(uint64(i), key, d)
				case 1:
					c.get(uint64(i), key)
				default:
					if i%501 == 0 {
						c.clear()
					} else {
						c.get(uint64(i-1), key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSchemaMemoComplementary: repeat complement checks on one schema
// hit the memo (observable through the metrics counters) and agree with
// the cold result; the memo is bounded.
func TestSchemaMemoComplementary(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := MustSchema(u, sigma)
	x := u.MustSet("E", "D")
	y := u.MustSet("D", "M")

	cold := Complementary(s, x, y)
	warm := Complementary(s, x, y)
	if cold != warm {
		t.Errorf("memoized verdict %v != cold verdict %v", warm, cold)
	}
	m1 := MinimalComplement(s, x)
	m2 := MinimalComplement(s, x)
	if !m1.Equal(m2) {
		t.Errorf("memoized minimal complement %v != %v", m2, m1)
	}
	snap := reg.Snapshot()
	if snap.Counters["core_schema_memo_hits_total"] == 0 {
		t.Errorf("schema memo never hit: %v", snap.Counters)
	}
}

// TestSchemaMemoEvictionBound floods the schema memo with distinct keys
// and checks the FIFO bound holds.
func TestSchemaMemoEvictionBound(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	sigma := dep.MustParseSet(u, "A -> B")
	for i := 0; i < schemaMemoCap*2; i++ {
		s := MustSchema(u, sigma) // distinct schema pointer per iteration
		Complementary(s, u.MustSet("A", "B"), u.MustSet("B"))
	}
	schemaMemoTable.mu.Lock()
	n := len(schemaMemoTable.memo)
	schemaMemoTable.mu.Unlock()
	if n > schemaMemoCap {
		t.Errorf("schema memo holds %d entries, cap %d", n, schemaMemoCap)
	}
}

// TestPairArtifactsStable: the memoized schema-level artifacts are
// computed once and shared across decides.
func TestPairArtifactsStable(t *testing.T) {
	sess, syms := cacheFixture(t)
	p := sess.pair
	a1 := p.artifacts()
	if _, err := sess.Apply(Insert(relation.Tuple{syms.Const("zed"), syms.Const("dept0")})); err != nil {
		t.Fatal(err)
	}
	a2 := p.artifacts()
	if a1 != a2 {
		t.Error("pair artifacts recomputed between decides")
	}
	if len(a1.plans) != len(a1.splitFDs) {
		t.Errorf("plan count %d != FD count %d", len(a1.plans), len(a1.splitFDs))
	}
}
