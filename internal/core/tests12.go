package core

import (
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// DecideInsertTest1 decides insertion translatability by the paper's
// Test 1: instead of chasing the full relation R(V, t, r, f), chase only
// two-tuple relations {r, μ} for each tuple μ agreeing with t on X∩Y, and
// accept when every candidate (f, r) has some μ whose two-tuple chase
// succeeds fast.
//
// Test 1 is sound but stronger than necessary: it rejects every
// untranslatable insertion and possibly some translatable ones (those
// whose chase proof needs more than two tuples). Theorem 5 shows it is
// co-NP-complete on succinctly presented views.
func (p *Pair) DecideInsertTest1(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, err
	}
	if err := p.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, nil
	}
	d := &Decision{}
	// Condition (a): collect all μ candidates.
	var mus []int
	for ri, row := range v.Tuples() {
		if agreesOn(row, t, v, p.shared) {
			mus = append(mus, ri)
		}
	}
	if len(mus) == 0 {
		d.Reason = ReasonNoSharedMatch
		return d, nil
	}
	if r, done := p.checkConditionB(d); done {
		return r, nil
	}

	fds := p.schema.sigma.SplitFDs()
	for _, f := range fds {
		aID := f.To.IDs()[0]
		zInX := f.From.Intersect(p.x)
		zOutX := f.From.Diff(p.x)
		aInX := p.x.Has(aID)
		for ri, row := range v.Tuples() {
			if !agreesOn(row, t, v, zInX) {
				continue
			}
			if aInX && row[v.Col(aID)] == t[v.Col(aID)] {
				continue
			}
			ok := false
			for _, mi := range mus {
				if !aInX && mi == ri {
					ok = true // r = μ: equal trivially
					break
				}
				d.ChaseCalls++
				if p.twoTupleChaseSucceeds(v, ri, mi, zOutX, aID, aInX, fds) {
					ok = true
					break
				}
			}
			if !ok {
				d.Reason = ReasonChaseCounterexample
				d.WitnessFD = f
				d.WitnessRow = row.Clone()
				return d, nil
			}
		}
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, nil
}

// twoTupleChaseSucceeds builds the two-tuple relation {r, μ} padded with
// fresh nulls outside X, imposes r[Z∩(U−X)] = μ[Z∩(U−X)], chases, and
// reports success (constant clash, or r[A] equated with μ[A] when A ∉ X).
func (p *Pair) twoTupleChaseSucceeds(v *relation.Relation, ri, mi int, zOutX attr.Set, aID attr.ID, aInX bool, fds []dep.FD) bool {
	u := p.schema.u
	var gen value.NullGen
	pad := func(row relation.Tuple) relation.Tuple {
		nt := make(relation.Tuple, u.Size())
		for c := 0; c < u.Size(); c++ {
			if vc := v.Col(attr.ID(c)); vc >= 0 {
				nt[c] = row[vc]
			} else {
				nt[c] = gen.Fresh()
			}
		}
		return nt
	}
	rRow := pad(v.Tuple(ri))
	mRow := pad(v.Tuple(mi))
	// Impose shared nulls on Z ∩ (U−X).
	zOutX.Each(func(id attr.ID) bool {
		rRow[id] = mRow[id]
		return true
	})
	rel := relation.New(u.All())
	rel.Insert(rRow)
	rel.Insert(mRow)
	if rel.Len() == 1 {
		// r and μ collapsed into one row (r = μ and the imposition merged
		// their nulls). No constant clash can arise; r[A] = μ[A] holds
		// trivially when A ∉ X, but for A ∈ X the potential violation is
		// against the inserted tuple and remains unrefuted.
		return !aInX
	}
	res := chase.Instance(rel, fds)
	if res.ConstClash() {
		return true
	}
	if !aInX {
		return res.Same(rRow[rel.Col(aID)], mRow[rel.Col(aID)])
	}
	return false
}

// IsGoodComplement decides whether Y is a good complement of X (§3.1,
// Test 2): whether, for every pair of legal instances with equal
// X-projections that both admit the insertion, the translated insertion is
// legal in one iff it is legal in the other. Goodness is a property of the
// schema (X, Y, Σ) alone.
//
// The paper shows two-tuple witnesses suffice; this implementation runs,
// for every FD Z→A of Σ, a symbolic chase over the generic two-relation
// counterexample pattern (μ₁, ν₁; μ₂, ν₂ plus the inserted tuples t₁, t₂)
// and reports not-good iff ν₁[A] = t₁[A] is not forced for some FD.
// Runs in O(|Σ|²·|U|)-ish time, independent of any view instance.
func (p *Pair) IsGoodComplement() (bool, error) {
	if err := p.requireFDOnly(); err != nil {
		return false, err
	}
	fds := p.schema.sigma.SplitFDs()
	for _, f := range fds {
		if !p.goodForFD(f, fds) {
			return false, nil
		}
	}
	return true, nil
}

// goodForFD runs the symbolic counterexample chase for one FD Z→A.
// It returns true when ν₁[A] = t₁[A] is forced (no counterexample).
func (p *Pair) goodForFD(f dep.FD, fds []dep.FD) bool {
	u := p.schema.u
	n := u.Size()
	// Symbol allocation.
	var parent []int
	fresh := func() int {
		id := len(parent)
		parent = append(parent, id)
		return id
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		return true
	}

	// Tuples as symbol vectors indexed by attribute ID.
	mkTuple := func() []int {
		t := make([]int, n)
		for c := range t {
			t[c] = fresh()
		}
		return t
	}
	t1 := mkTuple()
	mu1 := mkTuple()
	nu1 := mkTuple()
	mu2 := mkTuple()
	nu2 := mkTuple()
	t2 := mkTuple()
	// Scenario identifications:
	//   μ₁ agrees with t₁ on Y (the inserted tuple takes its Y part from μ̂₁);
	//   ν₁ agrees with t₁ on Z (the violation premise);
	//   μ₂[X] = μ₁[X], ν₂[X] = ν₁[X] (equal X-projections);
	//   t₂[X] = t₁[X] (same view tuple t), t₂[Y] = μ₂[Y].
	p.y.Each(func(id attr.ID) bool { union(mu1[id], t1[id]); return true })
	f.From.Each(func(id attr.ID) bool { union(nu1[id], t1[id]); return true })
	p.x.Each(func(id attr.ID) bool {
		union(mu2[id], mu1[id])
		union(nu2[id], nu1[id])
		union(t2[id], t1[id])
		return true
	})
	p.y.Each(func(id attr.ID) bool { union(t2[id], mu2[id]); return true })

	// Chase the legality constraints to fixpoint:
	//   R₁ = {μ₁, ν₁} ⊨ Σ; T_u[R₂] = {μ₂, ν₂, t₂} ⊨ Σ.
	pairs := [][2][]int{
		{mu1, nu1},
		{mu2, nu2},
		{mu2, t2},
		{nu2, t2},
	}
	for changed := true; changed; {
		changed = false
		for _, pr := range pairs {
			a, b := pr[0], pr[1]
			for _, g := range fds {
				agree := true
				g.From.Each(func(id attr.ID) bool {
					if find(a[id]) != find(b[id]) {
						agree = false
						return false
					}
					return true
				})
				if !agree {
					continue
				}
				g.To.Each(func(id attr.ID) bool {
					if union(a[id], b[id]) {
						changed = true
					}
					return true
				})
			}
		}
	}
	aID := f.To.IDs()[0]
	return find(nu1[aID]) == find(t1[aID])
}

// DecideInsertTest2 decides insertion translatability by the paper's
// Test 2: if Y is a good complement of X, one canonical instance R₀
// (the chased null-padding of V) decides translatability exactly — build
// R₀, translate, and check Σ on the result. If Y is not good, Test 2
// rejects every insertion (the caller should fall back to DecideInsert).
func (p *Pair) DecideInsertTest2(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	good, err := p.IsGoodComplement()
	if err != nil {
		return nil, err
	}
	return p.decideInsertTest2With(v, t, good)
}

// DecideInsertTest2Known is DecideInsertTest2 with the goodness verdict
// precomputed (goodness is schema-level and should be checked once when
// the complement is declared).
func (p *Pair) DecideInsertTest2Known(v *relation.Relation, t relation.Tuple, good bool) (*Decision, error) {
	return p.decideInsertTest2With(v, t, good)
}

func (p *Pair) decideInsertTest2With(v *relation.Relation, t relation.Tuple, good bool) (*Decision, error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, err
	}
	if err := p.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, nil
	}
	d := &Decision{}
	if !good {
		d.Reason = ReasonNotGoodComplement
		return d, nil
	}
	mu, ok := p.findSharedMatch(v, t)
	if !ok {
		d.Reason = ReasonNoSharedMatch
		return d, nil
	}
	if r, done := p.checkConditionB(d); done {
		return r, nil
	}
	pd, err := p.newPadding(v)
	if err != nil {
		if errors.Is(err, errConstClash) {
			d.Reason = ReasonViewInconsistent
			return d, nil
		}
		return nil, err
	}
	d.ChaseCalls++
	// Build the inserted tuple over U: X part from t, U−X part from μ's
	// canonical row.
	u := p.schema.u
	ins := make(relation.Tuple, u.Size())
	for c := 0; c < u.Size(); c++ {
		id := attr.ID(c)
		if vc := v.Col(id); vc >= 0 {
			ins[c] = t[vc]
		} else {
			ins[c] = pd.cell(mu, id)
		}
	}
	// Check every FD between ins and every canonical row (pairwise check
	// suffices: R₀ itself is chased, hence FD-consistent).
	r0 := pd.canonicalInstance()
	for _, f := range pd.fds {
		zc := make([]int, 0, f.From.Len())
		f.From.Each(func(id attr.ID) bool { zc = append(zc, r0.Col(id)); return true })
		ac := r0.Col(f.To.IDs()[0])
		for _, row := range r0.Tuples() {
			agree := true
			for _, c := range zc {
				if row[c] != ins[c] {
					agree = false
					break
				}
			}
			if agree && row[ac] != ins[ac] {
				d.Reason = ReasonRepresentativeViolation
				d.WitnessFD = f
				d.WitnessRow = row.Clone()
				return d, nil
			}
		}
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, nil
}
