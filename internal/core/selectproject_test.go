package core

import (
	"testing"

	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// toysView builds the σ_{D=toys} π_ED restricted view over the EDM pair.
func toysView(t testing.TB) (*RestrictedPair, *relation.Relation, *value.Symbols) {
	t.Helper()
	p, r, syms := edmDatabase(t)
	u := p.Schema().Universe()
	dID, _ := u.Lookup("D")
	pred, err := NewEqConst(p.ViewAttrs(), dID, syms.Const("toys"), "toys")
	if err != nil {
		t.Fatal(err)
	}
	return NewRestrictedPair(p, pred), r, syms
}

func TestRestrictedInstance(t *testing.T) {
	rp, r, syms := toysView(t)
	inst := rp.Instance(r)
	if inst.Len() != 2 {
		t.Fatalf("restricted view has %d tuples, want 2:\n%s", inst.Len(), inst.Format(syms))
	}
	for _, tp := range inst.Tuples() {
		if !rp.Predicate().Eval(tp) {
			t.Error("tuple outside restriction in instance")
		}
	}
}

func TestRestrictedInsert(t *testing.T) {
	rp, r, syms := toysView(t)
	v := r.Project(rp.Pair().ViewAttrs())
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	d, err := rp.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v", d)
	}
	out, err := rp.ApplyInsert(r, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Instance(out).Contains(tup) {
		t.Error("inserted tuple missing from restricted view")
	}
	// The σ_¬P part and π_Y both constant (checked internally; verify
	// externally too).
	notP := out.Project(rp.Pair().ViewAttrs()).Select(Not{rp.Predicate()}.Eval)
	before := r.Project(rp.Pair().ViewAttrs()).Select(Not{rp.Predicate()}.Eval)
	if !notP.Equal(before) {
		t.Error("σ_¬P π_X changed")
	}
}

func TestRestrictedInsertOutsidePredicate(t *testing.T) {
	rp, r, syms := toysView(t)
	v := r.Project(rp.Pair().ViewAttrs())
	tup := relation.Tuple{syms.Const("ann"), syms.Const("tools")}
	if _, err := rp.DecideInsert(v, tup); err == nil {
		t.Error("tuple outside P accepted by DecideInsert")
	}
	if _, err := rp.ApplyInsert(r, tup); err == nil {
		t.Error("tuple outside P accepted by ApplyInsert")
	}
}

func TestRestrictedDelete(t *testing.T) {
	rp, r, syms := toysView(t)
	v := r.Project(rp.Pair().ViewAttrs())
	tup := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	d, err := rp.DecideDelete(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v", d)
	}
	out, err := rp.ApplyDelete(r, tup)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Instance(out).Contains(tup) {
		t.Error("deleted tuple still in restricted view")
	}
	if _, err := rp.DecideDelete(v, relation.Tuple{syms.Const("bob"), syms.Const("tools")}); err == nil {
		t.Error("delete outside P accepted")
	}
}

func TestRestrictedReplace(t *testing.T) {
	rp, r, syms := toysView(t)
	v := r.Project(rp.Pair().ViewAttrs())
	// Rename ed to ann within the toys view (case 2: same pivot).
	t1 := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	t2 := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	d, err := rp.DecideReplace(v, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v", d)
	}
	out, err := rp.ApplyReplace(r, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !rp.Instance(out).Contains(t2) || rp.Instance(out).Contains(t1) {
		t.Error("replace not reflected in restricted view")
	}
	// Replacing across the restriction boundary is refused.
	cross := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	if _, err := rp.DecideReplace(v, t1, cross); err == nil {
		t.Error("cross-boundary replace accepted by Decide")
	}
	if _, err := rp.ApplyReplace(r, t1, cross); err == nil {
		t.Error("cross-boundary replace accepted by Apply")
	}
}

func TestPredicateCombinators(t *testing.T) {
	rp, r, syms := toysView(t)
	u := rp.Pair().Schema().Universe()
	eID, _ := u.Lookup("E")
	pe, err := NewEqConst(rp.Pair().ViewAttrs(), eID, syms.Const("ed"), "ed")
	if err != nil {
		t.Fatal(err)
	}
	both := And{rp.Predicate(), pe}
	inst := r.Project(rp.Pair().ViewAttrs()).Select(both.Eval)
	if inst.Len() != 1 {
		t.Errorf("And selected %d tuples, want 1", inst.Len())
	}
	neither := r.Project(rp.Pair().ViewAttrs()).Select(Not{both}.Eval)
	if neither.Len() != 2 {
		t.Errorf("Not selected %d tuples, want 2", neither.Len())
	}
	if both.String() == "" || (Not{both}).String() == "" {
		t.Error("empty predicate strings")
	}
	if got := rp.Predicate().String(); got != "D = toys" {
		t.Errorf("EqConst String = %q", got)
	}
}

func TestNewEqConstValidation(t *testing.T) {
	rp, _, syms := toysView(t)
	u := rp.Pair().Schema().Universe()
	mID, _ := u.Lookup("M")
	if _, err := NewEqConst(rp.Pair().ViewAttrs(), mID, syms.Const("mo"), "mo"); err == nil {
		t.Error("predicate on non-view attribute accepted")
	}
}
