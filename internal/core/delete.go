package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/relation"
)

// DecideDelete decides, by Theorem 8, whether deleting tuple t from view
// instance v is translatable under constant complement Y. The test is
// O(|V| + |Σ|): condition (a) — some other view tuple shares t[X∩Y], so
// the complement row survives — and condition (b) — Σ ⊨ X∩Y → Y and
// Σ ⊭ X∩Y → X. No chase is needed: with Σ of FDs only, deleting tuples
// from a legal instance keeps it legal.
func (p *Pair) DecideDelete(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	return p.decideDelete(nil, v, t)
}

// DecideDeleteCtx is DecideDelete bounded by a context. The deletion
// test is linear-time, so the budget is checked once per view scan; it
// exists for API symmetry with the chase-backed tests.
func (p *Pair) DecideDeleteCtx(ctx context.Context, v *relation.Relation, t relation.Tuple) (*Decision, error) {
	return p.decideDelete(budget.New(ctx), v, t)
}

func (p *Pair) decideDelete(b *budget.B, v *relation.Relation, t relation.Tuple) (*Decision, error) {
	if err := b.Step(int64(v.Len())); err != nil {
		return nil, err
	}
	if err := p.requireFDOnly(); err != nil {
		return nil, err
	}
	if err := p.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if !v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, nil
	}
	d := &Decision{}
	// Condition (a): t[X∩Y] ∈ π_{X∩Y}(V − t).
	found := false
	for _, row := range v.Tuples() {
		if row.Equal(t) {
			continue
		}
		if agreesOn(row, t, v, p.shared) {
			found = true
			break
		}
	}
	if !found {
		d.Reason = ReasonNoSharedMatch
		return d, nil
	}
	if r, done := p.checkConditionB(d); done {
		return r, nil
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, nil
}

// ApplyDelete performs the unique translation T_u[R] = R − t*π_Y(R) of
// Theorem 8 on a database instance, verifying the complement stays
// constant and the view update is implemented.
func (p *Pair) ApplyDelete(r *relation.Relation, t relation.Tuple) (*relation.Relation, error) {
	out, v, err := p.translateDelete(r, t)
	if err != nil {
		return nil, err
	}
	// T_u[R] ⊆ R and Σ has FDs only, so legality is automatic; verify the
	// semantics anyway.
	if !out.Project(p.y).Equal(r.Project(p.y)) {
		return nil, errors.New("core: translated deletion changed the complement")
	}
	want := v.Clone()
	want.Delete(t)
	if !out.Project(p.x).Equal(want) {
		return nil, errors.New("core: translated deletion did not implement the view update")
	}
	return out, nil
}

// translateDelete computes T_u[R] = R − t*π_Y(R) and the view π_X(R)
// without ApplyDelete's defensive re-verification; Session.ApplyCtx
// verifies once at the session layer.
func (p *Pair) translateDelete(r *relation.Relation, t relation.Tuple) (out, v *relation.Relation, err error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, nil, err
	}
	if !r.Attrs().Equal(p.schema.u.All()) {
		return nil, nil, errors.New("core: database instance must be over U")
	}
	v = r.Project(p.x)
	if !v.Contains(t) {
		return r.Clone(), v, nil // acceptability
	}
	doomed, err := p.translatedTuples(r, t)
	if err != nil {
		return nil, nil, err
	}
	out = r.Clone()
	for _, dt := range doomed.Tuples() {
		out.Delete(dt)
	}
	return out, v, nil
}
