package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// chain20 builds the 20-attribute chained-FD schema A00→A01→…→A19 with
// the view X covering the first half — large enough that the Theorem 2
// exact search (≈ Σ_k C(20,k) complementarity chases before reaching
// |Y| = 10) cannot finish on a small budget.
func chain20() (*Schema, attr.Set) {
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("A%02d", i)
	}
	u := attr.MustUniverse(names...)
	sigma := dep.NewSet(u)
	for i := 0; i+1 < 20; i++ {
		sigma.Add(dep.NewFD(u.MustSet(names[i]), u.MustSet(names[i+1])))
	}
	x := u.Empty()
	for i := 0; i < 10; i++ {
		x = x.With(attr.ID(i))
	}
	return MustSchema(u, sigma), x
}

func TestRecommendBudgetDegradesToMinimal(t *testing.T) {
	s, x := chain20()
	m := NewManager(s)
	m.SetExactSearchLimit(20)
	// Enough steps for the Corollary-2 minimal complement (≈ |U| chases)
	// and its minimality refinement, far too few for the exact search.
	b := budget.WithSteps(context.Background(), 200)
	recs := m.RecommendBudget(b, x)
	if len(recs) == 0 {
		t.Fatal("degraded Recommend returned no candidates")
	}
	for _, r := range recs {
		if !r.Degraded {
			t.Errorf("recommendation %v not flagged Degraded", r.Y)
		}
		if !Complementary(s, x, r.Y) {
			t.Errorf("degraded recommendation %v is not a complement", r.Y)
		}
		if r.Minimum {
			t.Errorf("degraded recommendation %v claims Minimum without the exact search", r.Y)
		}
	}
	if want := MinimalComplement(s, x); !recs[0].Y.Equal(want) {
		t.Errorf("degraded fallback = %v, want Corollary-2 minimal complement %v", recs[0].Y, want)
	}
}

func TestRecommendCtxTimeoutReturnsInsteadOfHanging(t *testing.T) {
	s, x := chain20()
	m := NewManager(s)
	m.SetExactSearchLimit(20) // force the exponential search path
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	done := make(chan []Recommendation, 1)
	go func() { done <- m.RecommendCtx(ctx, x) }()
	// Watchdog via a context deadline, the repo's sanctioned timeout
	// mechanism, rather than a raw time.After timer.
	wd, wdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wdCancel()
	select {
	case recs := <-done:
		if len(recs) == 0 {
			t.Fatal("timed-out Recommend returned no candidates")
		}
		if !Complementary(s, x, recs[0].Y) {
			t.Errorf("fallback %v is not a complement", recs[0].Y)
		}
	case <-wd.Done():
		t.Fatal("RecommendCtx hung past its 1ms budget")
	}
}

func TestMinimumComplementCtxCancelled(t *testing.T) {
	s, x := chain20()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := MinimumComplementCtx(ctx, s, x)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// edmSession builds the paper's §2 Employee–Department–Manager session.
func edmSession(t *testing.T) (*Session, *Pair, *value.Symbols) {
	t.Helper()
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := MustSchema(u, sigma)
	pair := MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	sess, err := NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	return sess, pair, syms
}

func TestSessionApplyCtxCancelledLeavesStateUntouched(t *testing.T) {
	sess, _, syms := edmSession(t)
	before := sess.Database()
	logLen := len(sess.Log())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	op := Insert(relation.Tuple{syms.Const("newbie"), syms.Const("dept0")})
	_, err := sess.ApplyCtx(ctx, op)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if !sess.Database().Equal(before) {
		t.Error("cancelled ApplyCtx mutated the database")
	}
	if len(sess.Log()) != logLen {
		t.Error("cancelled ApplyCtx appended to the log")
	}
	// The same op succeeds once the pressure is off.
	if _, err := sess.Apply(op); err != nil {
		t.Fatalf("apply after cancellation failed: %v", err)
	}
}

func TestDecideCtxCancelledAllKinds(t *testing.T) {
	sess, _, syms := edmSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ops := []UpdateOp{
		Insert(relation.Tuple{syms.Const("newbie"), syms.Const("dept0")}),
		Delete(relation.Tuple{syms.Const("emp0"), syms.Const("dept0")}),
		Replace(
			relation.Tuple{syms.Const("emp0"), syms.Const("dept0")},
			relation.Tuple{syms.Const("emp0"), syms.Const("dept1")},
		),
	}
	for _, op := range ops {
		if _, err := sess.DecideCtx(ctx, op); !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%v: want ErrBudgetExceeded, got %v", op.Kind, err)
		}
	}
}

func TestFindInsertComplementCtxCancelled(t *testing.T) {
	sess, pair, syms := edmSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := sess.View()
	tup := relation.Tuple{syms.Const("newbie"), syms.Const("dept0")}
	_, err := FindInsertComplementCtx(ctx, pair.Schema(), pair.ViewAttrs(), v, tup, TestExact)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestNonComplementaryWitnessCtxCancelled(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.NewSet(u))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := NonComplementaryWitnessCtx(ctx, s, u.MustSet("A", "B"), u.MustSet("B"), value.NewSymbols())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}
