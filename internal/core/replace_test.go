package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestDecideReplaceCase1Translatable(t *testing.T) {
	p, v, syms := edmView(t)
	// Replace (ed, toys) by (ed, tools): moves ed between departments.
	// Case 1 (shared D differs); (flo,toys) keeps toys alive, tools
	// exists via bob.
	t1 := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	t2 := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	d, err := p.DecideReplace(v, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v, want translatable", d)
	}
}

func TestDecideReplaceCase1LastSharer(t *testing.T) {
	p, v, syms := edmView(t)
	// Replace (bob, tools) by (bob, toys): bob is the only tools
	// employee, the tools complement row would vanish.
	t1 := relation.Tuple{syms.Const("bob"), syms.Const("tools")}
	t2 := relation.Tuple{syms.Const("bob"), syms.Const("toys")}
	d, err := p.DecideReplace(v, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonNoSharedMatch {
		t.Fatalf("decision = %+v, want NoSharedMatch", d)
	}
}

func TestDecideReplaceCase2(t *testing.T) {
	// Case 2: shared value equal. Pair (ED, DM); replace (ed, toys) by
	// (ann, toys) — renames the employee within the same department.
	p, v, syms := edmView(t)
	t1 := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	t2 := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	d, err := p.DecideReplace(v, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v, want translatable (case 2)", d)
	}
}

func TestDecideReplaceChaseCounterexample(t *testing.T) {
	// Same A->C, B->C setup as the insertion counterexample, phrased as a
	// replacement.
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.MustParseSet(u, "A -> C\nB -> C"))
	p := MustPair(s, u.MustSet("A", "B"), u.MustSet("B", "C"))
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("A", "B"))
	v.InsertVals(syms.Const("a1"), syms.Const("b1"))
	v.InsertVals(syms.Const("a2"), syms.Const("b2"))
	v.InsertVals(syms.Const("a3"), syms.Const("b1"))
	// Replace (a3, b1) by (a1, b2): inserting (a1, b2) forces a1's C to
	// b2's group in some legal database and breaks A -> C.
	t1 := relation.Tuple{syms.Const("a3"), syms.Const("b1")}
	t2 := relation.Tuple{syms.Const("a1"), syms.Const("b2")}
	d, err := p.DecideReplace(v, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonChaseCounterexample {
		t.Fatalf("decision = %+v, want ChaseCounterexample", d)
	}
}

func TestDecideReplaceValidation(t *testing.T) {
	p, v, syms := edmView(t)
	missing := relation.Tuple{syms.Const("zed"), syms.Const("toys")}
	present := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	if _, err := p.DecideReplace(v, missing, present); err == nil {
		t.Error("t1 missing accepted")
	}
	if _, err := p.DecideReplace(v, present, present); err == nil {
		t.Error("t2 already present accepted")
	}
	if _, err := p.DecideReplace(v, present, relation.Tuple{syms.Const("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestApplyReplaceEDM(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
		r.InsertVals(syms.Const(row[0]), syms.Const(row[1]), syms.Const(row[2]))
	}
	t1 := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	t2 := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	out, err := p.ApplyReplace(r, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Contains(relation.Tuple{syms.Const("ed"), syms.Const("tools"), syms.Const("tim")}) {
		t.Errorf("replacement row missing:\n%s", out.Format(syms))
	}
	if out.Contains(relation.Tuple{syms.Const("ed"), syms.Const("toys"), syms.Const("mo")}) {
		t.Error("replaced row still present")
	}
	if !out.Project(p.ComplementAttrs()).Equal(r.Project(p.ComplementAttrs())) {
		t.Error("complement changed")
	}
}

func TestApplyReplaceLastSharerErrors(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("bob"), syms.Const("tools"), syms.Const("tim"))
	r.InsertVals(syms.Const("flo"), syms.Const("toys"), syms.Const("mo"))
	t1 := relation.Tuple{syms.Const("bob"), syms.Const("tools")}
	t2 := relation.Tuple{syms.Const("bob"), syms.Const("toys")}
	if _, err := p.ApplyReplace(r, t1, t2); err == nil {
		t.Error("ApplyReplace dropped a complement row without error")
	}
}

// bruteReplaceTranslatable decides replacement translatability by
// definition: for every legal completion R of V (one row per view tuple,
// U−X cells over a domain simulating fresh nulls), the translation
// T_u[R] = R − t1*π_Y(R) ∪ t2*π_Y(R) must be legal, keep π_Y constant,
// and implement the view update.
func bruteReplaceTranslatable(p *Pair, v *relation.Relation, t1, t2 relation.Tuple, syms *value.Symbols) (translatable, anyLegal bool) {
	s := p.Schema()
	u := s.Universe()
	outX := u.All().Diff(p.ViewAttrs())
	outIDs := outX.IDs()
	cells := v.Len() * len(outIDs)
	domainSet := map[value.Value]bool{}
	for _, row := range v.Tuples() {
		for _, val := range row {
			domainSet[val] = true
		}
	}
	for _, val := range t2 {
		domainSet[val] = true
	}
	var domain []value.Value
	for val := range domainSet {
		domain = append(domain, val)
	}
	for i := 0; i < cells; i++ {
		domain = append(domain, syms.Const("fresh_rep_"+string(rune('a'+i))))
	}
	d := len(domain)
	assign := make([]int, cells)
	translatable = true
	for {
		r := relation.New(u.All())
		k := 0
		for _, row := range v.Tuples() {
			nt := make(relation.Tuple, u.Size())
			for c := 0; c < u.Size(); c++ {
				if vc := v.Col(attr.ID(c)); vc >= 0 {
					nt[c] = row[vc]
				} else {
					nt[c] = domain[assign[k]]
					k++
				}
			}
			r.Insert(nt)
		}
		if legal, _ := s.Legal(r); legal && r.Project(p.ViewAttrs()).Equal(v) {
			anyLegal = true
			vy := r.Project(p.ComplementAttrs())
			doomed := relation.Singleton(p.ViewAttrs(), t1).Join(vy)
			added := relation.Singleton(p.ViewAttrs(), t2).Join(vy)
			tu := r.Clone()
			for _, dt := range doomed.Tuples() {
				tu.Delete(dt)
			}
			for _, nt := range added.Tuples() {
				tu.Insert(nt.Clone())
			}
			want := v.Clone()
			want.Delete(t1)
			want.Insert(t2.Clone())
			if added.Len() == 0 {
				translatable = false
			} else if legal2, _ := s.Legal(tu); !legal2 {
				translatable = false
			} else if !tu.Project(p.ComplementAttrs()).Equal(vy) {
				translatable = false
			} else if !tu.Project(p.ViewAttrs()).Equal(want) {
				translatable = false
			}
			if !translatable {
				return false, true
			}
		}
		i := 0
		for i < cells {
			assign[i]++
			if assign[i] < d {
				break
			}
			assign[i] = 0
			i++
		}
		if i == cells {
			break
		}
	}
	return translatable, anyLegal
}

// TestQuickDecideReplaceMatchesBruteForce: E14 validation — the Theorem 9
// conditions agree with the brute-force definition on random small cases.
func TestQuickDecideReplaceMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, t2, syms, ok := randomInsertCase(rng)
		if !ok || v.Len() == 0 {
			return true
		}
		t1 := v.Tuple(rng.Intn(v.Len())).Clone()
		d, err := p.DecideReplace(v, t1, t2)
		if err != nil {
			return true // invalid shapes (t2 present etc.) are rejected upstream
		}
		brute, anyLegal := bruteReplaceTranslatable(p, v, t1, t2, syms)
		if !anyLegal {
			return !d.Translatable
		}
		return d.Translatable == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickReplaceConsistentWithDeleteInsert: when both the deletion of t1
// and the insertion of t2 are translatable and the replacement is too, the
// replacement equals delete-then-insert on the database (their composite
// is the same update when the pivot groups differ).
func TestQuickReplaceConsistentWithDeleteInsert(t *testing.T) {
	p, _, syms := edmView(t)
	u := p.Schema().Universe()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.New(u.All())
		n := 3 + rng.Intn(3)
		for i := 0; i < n; i++ {
			d := rng.Intn(2)
			dept, mgr := "toys", "mo"
			if d == 1 {
				dept, mgr = "tools", "tim"
			}
			r.InsertVals(syms.Const("w"+string(rune('a'+i))), syms.Const(dept), syms.Const(mgr))
		}
		v := r.Project(p.ViewAttrs())
		if v.Len() < 2 {
			return true
		}
		t1 := v.Tuple(rng.Intn(v.Len())).Clone()
		t2 := relation.Tuple{syms.Const("replacement"), t1[1]}
		if v.Contains(t2) {
			return true
		}
		dr, err := p.DecideReplace(v, t1, t2)
		if err != nil || !dr.Translatable {
			return true
		}
		viaReplace, err := p.ApplyReplace(r, t1, t2)
		if err != nil {
			return false
		}
		mid, err := p.ApplyDelete(r, t1)
		if err != nil {
			return true // delete alone may be untranslatable (last sharer)
		}
		viaTwo, err := p.ApplyInsert(mid, t2)
		if err != nil {
			return true
		}
		return viaReplace.Equal(viaTwo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
