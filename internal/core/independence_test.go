package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestIndependentEDM(t *testing.T) {
	// The paper's §2 remark: (ED, DM) is independent (the classic BCNF
	// decomposition), while (ED, EM) is complementary but NOT independent.
	s := edmSchema(t)
	u := s.Universe()
	ed, dm, em := u.MustSet("E", "D"), u.MustSet("D", "M"), u.MustSet("E", "M")
	if !Independent(s, ed, dm) {
		t.Error("(ED, DM) should be independent")
	}
	if Independent(s, ed, em) {
		t.Error("(ED, EM) should not be independent")
	}
	if !Complementary(s, ed, em) {
		t.Error("(ED, EM) should still be complementary")
	}
}

func TestIndependentRequiresCover(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	if Independent(s, u.MustSet("E", "D"), u.MustSet("D")) {
		t.Error("non-covering pair reported independent")
	}
}

func TestIndependentRejectsNonFD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	s := MustSchema(u, sigma)
	if Independent(s, u.MustSet("A", "B"), u.MustSet("B", "C")) {
		t.Error("JD schema accepted")
	}
}

// TestQuickIndependentImpliesComplementary: independence is strictly
// stronger than complementarity.
func TestQuickIndependentImpliesComplementary(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := dep.NewSet(u)
		for i := 0; i < 1+rng.Intn(3); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 4; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			sigma.Add(dep.NewFD(lhs, rhs))
		}
		s := MustSchema(u, sigma)
		x, y := randomSubset(u, rng), randomSubset(u, rng)
		if Independent(s, x, y) && !Complementary(s, x, y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickIndependentJoinIsLegal: for independent (X, Y), joining any
// legal X-instance with any matching legal Y-instance yields a legal
// database — the semantic content of independence.
func TestQuickIndependentJoinIsLegal(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	ed, dm := u.MustSet("E", "D"), u.MustSet("D", "M")
	xFDs := ProjectedFDs(s, ed)
	yFDs := ProjectedFDs(s, dm)
	syms := value.NewSymbols()
	vals := syms.Ints(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vx := relation.New(ed)
		vy := relation.New(dm)
		for i := 0; i < 4; i++ {
			vx.Insert(relation.Tuple{vals[rng.Intn(3)], vals[rng.Intn(3)]})
			vy.Insert(relation.Tuple{vals[rng.Intn(3)], vals[rng.Intn(3)]})
		}
		// Keep only draws where the view instances are locally legal.
		for _, fd := range xFDs {
			if !vx.SatisfiesFD(fd) {
				return true
			}
		}
		for _, fd := range yFDs {
			if !vy.SatisfiesFD(fd) {
				return true
			}
		}
		joined := vx.Join(vy)
		ok, _ := s.Legal(joined)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectedFDs(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	// On ED, the only nontrivial implied FD is E -> D.
	fds := ProjectedFDs(s, u.MustSet("E", "D"))
	if !closure.Implies(fds, dep.NewFD(u.MustSet("E"), u.MustSet("D"))) {
		t.Error("lost E -> D")
	}
	for _, f := range fds {
		if !f.From.Union(f.To).SubsetOf(u.MustSet("E", "D")) {
			t.Errorf("projected FD %v escapes ED", f)
		}
	}
	// On EM: E -> M is implied through D.
	fds = ProjectedFDs(s, u.MustSet("E", "M"))
	if !closure.Implies(fds, dep.NewFD(u.MustSet("E"), u.MustSet("M"))) {
		t.Error("lost E -> M (transitive through D)")
	}
}
