package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/relation"
)

// TestKind selects the translatability test used by FindInsertComplement.
type TestKind int

// Translatability tests.
const (
	// TestExact is the Theorem 3 chase test.
	TestExact TestKind = iota
	// TestOne is Test 1 (two-tuple chases).
	TestOne
	// TestTwo is Test 2 (good complements + canonical instance).
	TestTwo
)

func (k TestKind) String() string {
	switch k {
	case TestExact:
		return "exact"
	case TestOne:
		return "test1"
	case TestTwo:
		return "test2"
	}
	return fmt.Sprintf("TestKind(%d)", int(k))
}

// FindResult is the outcome of FindInsertComplement.
type FindResult struct {
	// Found reports whether some complement renders the insertion
	// translatable.
	Found bool
	// Complement is the witness Y = W_r ∪ (U − X) when Found.
	Complement attr.Set
	// Tests counts the translatability tests performed — bounded by
	// min(|V|, 2^|X|) per Theorem 6.
	Tests int
	// Candidates counts the distinct W_r sets examined.
	Candidates int
}

// FindInsertComplement implements Theorem 6: given Σ, X, the view instance
// v and the tuple t to insert, search for a complement Y of X under which
// the insertion is translatable. Only complements of the form
// Y = W ∪ (U − X) with W ⊆ X need to be considered, and only the sets
// W_r = {A ∈ X : r[A] = t[A]} for tuples r of V — at most
// min(|V|, 2^|X|) translatability tests.
//
// kind selects the underlying test; with TestOne or TestTwo the same
// candidate-reduction argument applies (see the remark after Theorem 7).
func FindInsertComplement(s *Schema, x attr.Set, v *relation.Relation, t relation.Tuple, kind TestKind) (*FindResult, error) {
	return findInsertComplement(nil, s, x, v, t, kind)
}

// FindInsertComplementCtx is FindInsertComplement bounded by a context:
// every candidate W_r charges one step and the underlying
// translatability tests run under the same budget, so the Theorem 6
// search aborts within one test of cancellation with an error wrapping
// ErrBudgetExceeded.
func FindInsertComplementCtx(ctx context.Context, s *Schema, x attr.Set, v *relation.Relation, t relation.Tuple, kind TestKind) (*FindResult, error) {
	return findInsertComplement(budget.New(ctx), s, x, v, t, kind)
}

func findInsertComplement(b *budget.B, s *Schema, x attr.Set, v *relation.Relation, t relation.Tuple, kind TestKind) (*FindResult, error) {
	if !s.fdsOnly() {
		return nil, errors.New("core: complement finding requires Σ of FDs only")
	}
	if !v.Attrs().Equal(x) {
		return nil, fmt.Errorf("core: view instance over %v, want %v", v.Attrs(), x)
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	res := &FindResult{}
	rest := s.u.All().Diff(x)
	seen := map[string]bool{}
	for _, row := range v.Tuples() {
		// W_r = attributes of X where r agrees with t.
		w := s.u.Empty()
		x.Each(func(id attr.ID) bool {
			if row[v.Col(id)] == t[v.Col(id)] {
				w = w.With(id)
			}
			return true
		})
		if seen[w.Key()] {
			continue
		}
		seen[w.Key()] = true
		if err := b.Step(1); err != nil {
			return nil, err
		}
		res.Candidates++
		y := w.Union(rest)
		if comp, err := ComplementaryBudget(b, s, x, y); err != nil {
			return nil, err
		} else if !comp {
			continue
		}
		pair, err := NewPair(s, x, y)
		if err != nil {
			continue
		}
		res.Tests++
		var d *Decision
		switch kind {
		case TestOne:
			d, err = pair.DecideInsertTest1(v, t)
		case TestTwo:
			d, err = pair.DecideInsertTest2(v, t)
		default:
			d, err = pair.decideInsert(b, v, t)
		}
		if err != nil {
			return nil, err
		}
		if d.Translatable {
			res.Found = true
			res.Complement = y
			return res, nil
		}
	}
	return res, nil
}
