package core

import (
	"encoding/binary"
	"sync"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
)

// This file holds the decision-memoization layer behind the serving
// pipeline. Everything cached here is safe to share because it is a
// pure function of immutable inputs:
//
//   - Pair and Schema never change after construction, so the artifacts
//     a decide recomputes from them (SharedIsKeyOf, SplitFDs, the
//     chase column plans) are per-Pair constants.
//   - A decision is a pure function of (view instance, op); the view
//     instance is identified collision-free by the session's version
//     counter, which bumps exactly when an op is applied.
//   - Complementary and MinimalComplement are pure functions of
//     (schema, X, Y); schemas are keyed by pointer identity, valid
//     because a Schema is immutable for its lifetime.
//
// No invalidation is ever needed: the complement of a Pair is constant
// by construction, so none of these artifacts can go stale.

// --- Per-Pair artifacts ---

// pairArtifacts are the schema-level constants every decide consults:
// the condition (b) key checks, Σ split to single-attribute RHS, and
// the chase column plans over the padded layout (columns of a relation
// are a pure function of its attribute set, so plans computed against
// an empty relation over U are valid for every padding).
type pairArtifacts struct {
	keyOfY, keyOfX bool
	splitFDs       []dep.FD
	plans          chase.Plans
	// fdPlans precomputes, per split FD Z→A, the attribute-set views the
	// candidate loops of decideInsert/decideReplace need on every row.
	fdPlans []fdPlan
}

// fdPlan is the per-FD geometry of the Theorem 3/9 candidate loop.
type fdPlan struct {
	fd    dep.FD
	aID   attr.ID
	zInX  attr.Set // Z ∩ X: candidate filter columns
	zOutX attr.Set // Z ∩ (U−X): imposition columns
	aInX  bool
	// skippable marks FDs for which no candidate (f, r) chase can fail,
	// so the loops elide them entirely. With μ the condition-(a) match:
	// if Z∩X ⊆ X∩Y and A ∈ X∩Y ∪ (U−X), every surviving candidate r
	// agrees with μ on Z∩X, and the imposition r[Z∩(U−X)] = μ[Z∩(U−X)]
	// makes r and μ agree on all of Z in the chased fixpoint — which
	// already satisfies Σ, so it derives r[A] = μ[A]. When A ∈ X the
	// aInX pre-filter removed rows agreeing with t on A; agreeing with
	// μ[A] = t[A] (μ matches t on X∩Y ∋ A) is then a constant clash —
	// chase success either way. Skipping is sound for the full and the
	// incremental decide paths alike.
	skippable bool
}

// artifacts returns the pair's memoized artifacts, computing them on
// first use. Safe for concurrent use; racing computations produce
// identical values and the first published wins.
func (p *Pair) artifacts() *pairArtifacts {
	if a := p.arts.Load(); a != nil {
		return a
	}
	fds := p.schema.sigma.SplitFDs()
	keyOfY, keyOfX := SharedIsKeyOf(p.schema, p.x, p.y)
	fdPlans := make([]fdPlan, len(fds))
	for i, f := range fds {
		aID := f.To.IDs()[0]
		zInX := f.From.Intersect(p.x)
		aInX := p.x.Has(aID)
		fdPlans[i] = fdPlan{
			fd:        f,
			aID:       aID,
			zInX:      zInX,
			zOutX:     f.From.Diff(p.x),
			aInX:      aInX,
			skippable: zInX.Diff(p.shared).IsEmpty() && (!aInX || p.shared.Has(aID)),
		}
	}
	a := &pairArtifacts{
		keyOfY:   keyOfY,
		keyOfX:   keyOfX,
		splitFDs: fds,
		plans:    chase.PlanFDs(relation.New(p.schema.u.All()), fds),
		fdPlans:  fdPlans,
	}
	p.arts.CompareAndSwap(nil, a)
	return p.arts.Load()
}

// --- Per-session decision cache ---

// The decision cache maps (view version, op) to a computed Decision. It
// is sharded so the pipeline's speculative decider can seed it while
// the committer reads it, and bounded so a seed storm degrades to
// recomputation instead of growth. Entries are evicted FIFO: seeds are
// consumed in roughly version order, so the oldest entry is the least
// likely to still be needed.

const (
	decisionShards   = 8
	decisionShardCap = 512
)

type decisionKey struct {
	version uint64
	op      string
}

type decisionShard struct {
	mu    sync.Mutex
	memo  map[decisionKey]*Decision
	order []decisionKey
}

type decisionCache struct {
	shards [decisionShards]decisionShard
}

// opCacheKey serializes an op collision-free within one session: the
// kind plus the raw value ids of its tuples (symbols are interned once
// per process, so ids identify constants for the session's lifetime).
func opCacheKey(op UpdateOp) string {
	b := make([]byte, 0, 2+8*(len(op.Tuple)+len(op.With)))
	b = append(b, byte(op.Kind))
	b = binary.AppendUvarint(b, uint64(len(op.Tuple)))
	for _, v := range op.Tuple {
		b = binary.AppendUvarint(b, uint64(v))
	}
	for _, v := range op.With {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return string(b)
}

func (c *decisionCache) shard(key string) *decisionShard {
	// FNV-1a over the op key.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%decisionShards]
}

func (c *decisionCache) get(version uint64, op string) *Decision {
	sh := c.shard(op)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.memo[decisionKey{version, op}]
}

func (c *decisionCache) put(version uint64, op string, d *Decision) {
	sh := c.shard(op)
	k := decisionKey{version, op}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.memo == nil {
		sh.memo = make(map[decisionKey]*Decision)
	}
	if _, ok := sh.memo[k]; ok {
		sh.memo[k] = d
		return
	}
	if len(sh.memo) >= decisionShardCap {
		old := sh.order[0]
		sh.order = sh.order[1:]
		delete(sh.memo, old)
	}
	sh.memo[k] = d
	sh.order = append(sh.order, k)
}

func (c *decisionCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.memo = nil
		sh.order = nil
		sh.mu.Unlock()
	}
}

// --- Schema-level memo (Complementary / MinimalComplement) ---

// schemaMemoKey identifies one memoized schema-level question. Schemas
// are compared by pointer: a *Schema is immutable, so pointer identity
// implies answer identity (and a freed schema's entries are dead weight
// evicted FIFO, never wrong answers).
type schemaMemoKey struct {
	s    *Schema
	kind uint8
	x, y string
}

const (
	memoComplementary uint8 = iota
	memoMinimal
)

const schemaMemoCap = 4096

// schemaMemo is a bounded FIFO memo for the schema-level procedures.
type schemaMemo struct {
	mu    sync.Mutex
	memo  map[schemaMemoKey]any
	order []schemaMemoKey
}

var schemaMemoTable schemaMemo

func setKey(s attr.Set) string {
	ids := s.IDs()
	b := make([]byte, 0, len(ids))
	for _, id := range ids {
		b = binary.AppendUvarint(b, uint64(id))
	}
	return string(b)
}

func (m *schemaMemo) get(k schemaMemoKey) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.memo[k]
	if cm := coremetrics.Load(); cm != nil {
		if ok {
			cm.schemaMemoHits.Inc()
		} else {
			cm.schemaMemoMisses.Inc()
		}
	}
	return v, ok
}

func (m *schemaMemo) put(k schemaMemoKey, v any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.memo == nil {
		m.memo = make(map[schemaMemoKey]any)
	}
	if _, ok := m.memo[k]; ok {
		m.memo[k] = v
		return
	}
	if len(m.memo) >= schemaMemoCap {
		old := m.order[0]
		m.order = m.order[1:]
		delete(m.memo, old)
	}
	m.memo[k] = v
	m.order = append(m.order, k)
}
