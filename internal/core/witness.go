package core

import (
	"context"
	"errors"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// NonComplementaryWitness constructs the counterexample of Theorem 1's
// proof for a non-complementary pair: two *distinct* legal instances R and
// R' with π_X(R) = π_X(R') and π_Y(R) = π_Y(R'). By the proof, when Σ
// consists of FDs and JDs a two-tuple witness always exists, built from a
// two-tuple relation violating *[X, Y]: R = {μ, ν} and R' obtained by
// swapping the X−Y parts of μ and ν.
//
// The search enumerates two-tuple agreement patterns S ⊆ U (the columns
// where μ and ν agree): legality of a two-tuple relation depends only on
// the pattern, so the enumeration is exact and costs O(2^|U| · |Σ|).
// Constants are interned in syms. It errors if X, Y are in fact
// complementary.
func NonComplementaryWitness(s *Schema, x, y attr.Set, syms *value.Symbols) (*relation.Relation, *relation.Relation, error) {
	return nonComplementaryWitness(nil, s, x, y, syms)
}

// NonComplementaryWitnessCtx is NonComplementaryWitness bounded by a
// context: the O(2^|U|) agreement-pattern enumeration checks
// cancellation on every pattern and aborts with an error wrapping
// ErrBudgetExceeded.
func NonComplementaryWitnessCtx(ctx context.Context, s *Schema, x, y attr.Set, syms *value.Symbols) (*relation.Relation, *relation.Relation, error) {
	return nonComplementaryWitness(budget.New(ctx), s, x, y, syms)
}

func nonComplementaryWitness(b *budget.B, s *Schema, x, y attr.Set, syms *value.Symbols) (*relation.Relation, *relation.Relation, error) {
	if s.sigma.HasEFDs() {
		return nil, nil, errors.New("core: witness construction supports FDs and JDs only")
	}
	if Complementary(s, x, y) {
		return nil, nil, errors.New("core: views are complementary; no witness exists")
	}
	u := s.u
	n := u.Size()
	shared := x.Intersect(y)

	var found *relation.Relation
	var foundSwap *relation.Relation
	var stop error
	u.All().Subsets(func(agree attr.Set) bool {
		if err := b.Step(1); err != nil {
			stop = err
			return false
		}
		// μ and ν agree exactly on the columns of `agree`. The proof
		// needs μ[X∩Y] = ν[X∩Y], μ and ν differing on X−Y and on Y−X
		// (otherwise one of the projections already collapses and the
		// swap is the identity or the relations coincide).
		if !shared.SubsetOf(agree) {
			return true
		}
		if x.Diff(y).SubsetOf(agree) || y.Diff(x).SubsetOf(agree) {
			return true
		}
		mu := make(relation.Tuple, n)
		nu := make(relation.Tuple, n)
		for c := 0; c < n; c++ {
			name := "a" + u.Name(attr.ID(c))
			mu[c] = syms.Const(name)
			if agree.Has(attr.ID(c)) {
				nu[c] = mu[c]
			} else {
				nu[c] = syms.Const("b" + u.Name(attr.ID(c)))
			}
		}
		r := relation.New(u.All())
		r.Insert(mu.Clone())
		r.Insert(nu.Clone())
		if legal, _ := s.Legal(r); !legal {
			return true
		}
		// R': μ' agrees with μ on X and with ν on Y−X (and elsewhere
		// outside X∪Y keeps μ's values); ν' symmetric.
		muP := mu.Clone()
		nuP := nu.Clone()
		y.Diff(x).Each(func(id attr.ID) bool {
			muP[id], nuP[id] = nu[id], mu[id]
			return true
		})
		r2 := relation.New(u.All())
		r2.Insert(muP)
		r2.Insert(nuP)
		if legal, _ := s.Legal(r2); !legal {
			return true
		}
		if r.Equal(r2) {
			return true
		}
		if !r.Project(x).Equal(r2.Project(x)) || !r.Project(y).Equal(r2.Project(y)) {
			return true
		}
		found, foundSwap = r, r2
		return false
	})
	if stop != nil {
		return nil, nil, stop
	}
	if found == nil {
		// Complementarity can also fail because X ∪ Y ≠ U (information
		// entirely outside both views): two one-tuple instances
		// differing only outside X ∪ Y witness that.
		rest := u.All().Diff(x.Union(y))
		if !rest.IsEmpty() {
			mu := make(relation.Tuple, n)
			muP := make(relation.Tuple, n)
			for c := 0; c < n; c++ {
				mu[c] = syms.Const("a" + u.Name(attr.ID(c)))
				muP[c] = mu[c]
			}
			rest.Each(func(id attr.ID) bool {
				muP[id] = syms.Const("b" + u.Name(id))
				return true
			})
			r := relation.New(u.All())
			r.Insert(mu)
			r2 := relation.New(u.All())
			r2.Insert(muP)
			okR, _ := s.Legal(r)
			okR2, _ := s.Legal(r2)
			if okR && okR2 {
				return r, r2, nil
			}
		}
		return nil, nil, errors.New("core: internal: no two-tuple witness found for a non-complementary pair")
	}
	return found, foundSwap, nil
}
