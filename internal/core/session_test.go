package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// edmDatabase builds the standard 3-tuple EDM database.
func edmDatabase(t testing.TB) (*Pair, *relation.Relation, *value.Symbols) {
	t.Helper()
	s := edmSchema(t)
	u := s.Universe()
	p := MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	r := relation.New(u.All())
	for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
		r.InsertVals(syms.Const(row[0]), syms.Const(row[1]), syms.Const(row[2]))
	}
	return p, r, syms
}

func TestSessionBasics(t *testing.T) {
	p, r, syms := edmDatabase(t)
	sess, err := NewSession(p, r)
	if err != nil {
		t.Fatal(err)
	}
	ops := []UpdateOp{
		Insert(relation.Tuple{syms.Const("ann"), syms.Const("toys")}),
		Delete(relation.Tuple{syms.Const("ed"), syms.Const("toys")}),
		Replace(relation.Tuple{syms.Const("ann"), syms.Const("toys")},
			relation.Tuple{syms.Const("ann"), syms.Const("tools")}),
	}
	n, err := sess.ApplyAll(ops)
	if err != nil {
		t.Fatalf("applied %d: %v", n, err)
	}
	if n != 3 {
		t.Fatalf("applied %d ops", n)
	}
	if len(sess.Log()) != 3 {
		t.Errorf("log has %d entries", len(sess.Log()))
	}
	// Complement never changed.
	if !sess.Database().Project(p.ComplementAttrs()).Equal(r.Project(p.ComplementAttrs())) {
		t.Error("complement changed across the session")
	}
	// Final view content.
	v := sess.View()
	if !v.Contains(relation.Tuple{syms.Const("ann"), syms.Const("tools")}) {
		t.Error("replace lost")
	}
	if v.Contains(relation.Tuple{syms.Const("ed"), syms.Const("toys")}) {
		t.Error("delete lost")
	}
}

func TestSessionRejection(t *testing.T) {
	p, r, syms := edmDatabase(t)
	sess, err := NewSession(p, r)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Database()
	_, err = sess.Apply(Insert(relation.Tuple{syms.Const("zoe"), syms.Const("plants")}))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if !sess.Database().Equal(before) {
		t.Error("rejected update changed the database")
	}
	if len(sess.Log()) != 1 || sess.Log()[0].Applied {
		t.Error("rejection not logged")
	}
}

func TestSessionIllegalInitial(t *testing.T) {
	p, _, syms := edmDatabase(t)
	bad := relation.New(p.Schema().Universe().All())
	bad.InsertVals(syms.Const("e"), syms.Const("d"), syms.Const("m1"))
	bad.InsertVals(syms.Const("e"), syms.Const("d2"), syms.Const("m2"))
	if _, err := NewSession(p, bad); err == nil {
		t.Error("illegal initial database accepted")
	}
}

func TestSessionDecideDoesNotMutate(t *testing.T) {
	p, r, syms := edmDatabase(t)
	sess, _ := NewSession(p, r)
	before := sess.Database()
	if _, err := sess.Decide(Insert(relation.Tuple{syms.Const("ann"), syms.Const("toys")})); err != nil {
		t.Fatal(err)
	}
	if !sess.Database().Equal(before) || len(sess.Log()) != 0 {
		t.Error("Decide mutated session state")
	}
}

// TestQuickSessionMorphism: applying updates one by one equals applying
// them in any decomposition — the operational face of BS fact (ii).
func TestQuickSessionMorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, r, syms := edmDatabase(t)
		var ops []UpdateOp
		names := []string{"w1", "w2", "w3", "w4"}
		depts := []string{"toys", "tools"}
		for i := 0; i < 4; i++ {
			name := names[rng.Intn(len(names))]
			dept := depts[rng.Intn(2)]
			if rng.Intn(2) == 0 {
				ops = append(ops, Insert(relation.Tuple{syms.Const(name), syms.Const(dept)}))
			} else {
				ops = append(ops, Delete(relation.Tuple{syms.Const(name), syms.Const(dept)}))
			}
		}
		// Path 1: one session start-to-finish.
		s1, err := NewSession(p, r)
		if err != nil {
			return false
		}
		stop := len(ops)
		for i, op := range ops {
			if _, err := s1.Apply(op); err != nil {
				if errors.Is(err, ErrRejected) {
					stop = i
					break
				}
				return false
			}
		}
		// Path 2: split into two sessions at an arbitrary point before the
		// first rejection.
		if stop == 0 {
			return true
		}
		cut := rng.Intn(stop) + 1
		s2a, err := NewSession(p, r)
		if err != nil {
			return false
		}
		if _, err := s2a.ApplyAll(ops[:cut]); err != nil {
			return false
		}
		s2b, err := NewSession(p, s2a.Database())
		if err != nil {
			return false
		}
		for _, op := range ops[cut:stop] {
			if _, err := s2b.Apply(op); err != nil {
				return false
			}
		}
		return s1.Database().Equal(s2b.Database())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestUpdateKindString(t *testing.T) {
	if UpdateInsert.String() != "insert" || UpdateDelete.String() != "delete" || UpdateReplace.String() != "replace" {
		t.Error("kind strings wrong")
	}
	if UpdateKind(7).String() != "UpdateKind(7)" {
		t.Error("fallback wrong")
	}
}

func TestSessionUnknownKind(t *testing.T) {
	p, r, _ := edmDatabase(t)
	sess, _ := NewSession(p, r)
	if _, err := sess.Decide(UpdateOp{Kind: UpdateKind(9)}); err == nil {
		t.Error("unknown kind accepted")
	}
}
