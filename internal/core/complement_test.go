package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// edmSchema is the paper's Employee–Department–Manager running example.
func edmSchema(t testing.TB) *Schema {
	t.Helper()
	u := attr.MustUniverse("E", "D", "M")
	return MustSchema(u, dep.MustParseSet(u, "E -> D\nD -> M"))
}

func TestComplementaryEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	ed, dm, em := u.MustSet("E", "D"), u.MustSet("D", "M"), u.MustSet("E", "M")
	if !Complementary(s, ed, dm) {
		t.Error("ED, DM should be complementary (D -> M)")
	}
	if !Complementary(s, ed, em) {
		t.Error("ED, EM should be complementary (E -> DM)")
	}
	// D alone is not a complement of ED: D∪ED ⊉ M... it is: ED∪D = ED ≠ U.
	if Complementary(s, ed, u.MustSet("D")) {
		t.Error("ED, D complementary despite not covering U")
	}
	// EM and DM: shared M determines nothing.
	if Complementary(s, em, dm) {
		t.Error("EM, DM should not be complementary")
	}
	// Identity-ish: U is a complement of anything.
	if !Complementary(s, ed, u.All()) {
		t.Error("U should complement every view")
	}
}

func TestComplementaryNoFDs(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	s := MustSchema(u, nil)
	// Without FDs, X and Y complementary iff one contains U (the MVD
	// X∩Y →→ X must be trivial).
	if Complementary(s, u.MustSet("A"), u.MustSet("B")) {
		t.Error("A, B complementary without dependencies")
	}
	if !Complementary(s, u.MustSet("A"), u.All()) {
		t.Error("A, U not complementary")
	}
}

func TestComplementaryWithJD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	s := MustSchema(u, sigma)
	if !Complementary(s, u.MustSet("A", "B"), u.MustSet("B", "C")) {
		t.Error("JD *[AB, BC] should make AB, BC complementary")
	}
	if Complementary(s, u.MustSet("A", "C"), u.MustSet("B", "C")) {
		t.Error("AC, BC should not be complementary")
	}
}

// bruteComplementary enumerates pairs of legal instances with at most two
// tuples over a 2-value domain and checks the definition directly. By the
// paper's two-tuple counterexample argument this is exact for FD/JD
// schemas on small universes.
func bruteComplementary(s *Schema, x, y attr.Set, syms *value.Symbols) bool {
	u := s.Universe()
	n := u.Size()
	vals := syms.Ints(2)
	var tuples []relation.Tuple
	for mask := 0; mask < 1<<uint(n); mask++ {
		t := make(relation.Tuple, n)
		for c := 0; c < n; c++ {
			t[c] = vals[(mask>>uint(c))&1]
		}
		tuples = append(tuples, t)
	}
	var rels []*relation.Relation
	for i := range tuples {
		r := relation.New(u.All())
		r.Insert(tuples[i].Clone())
		rels = append(rels, r)
		for j := i + 1; j < len(tuples); j++ {
			r2 := relation.New(u.All())
			r2.Insert(tuples[i].Clone())
			r2.Insert(tuples[j].Clone())
			rels = append(rels, r2)
		}
	}
	var legal []*relation.Relation
	for _, r := range rels {
		if ok, _ := s.Legal(r); ok {
			legal = append(legal, r)
		}
	}
	for i, r := range legal {
		for _, r2 := range legal[i+1:] {
			if r.Project(x).Equal(r2.Project(x)) && r.Project(y).Equal(r2.Project(y)) {
				return false
			}
		}
	}
	return true
}

func TestQuickComplementaryMatchesBruteForce(t *testing.T) {
	// E1: the Theorem 1 characterization agrees with the semantic
	// definition on random FD schemas over small universes.
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := dep.NewSet(u)
		for i := 0; i < 1+rng.Intn(3); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 4; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			sigma.Add(dep.NewFD(lhs, rhs))
		}
		s := MustSchema(u, sigma)
		syms := value.NewSymbols()
		x := randomSubset(u, rng)
		y := randomSubset(u, rng)
		return Complementary(s, x, y) == bruteComplementary(s, x, y, syms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func randomSubset(u *attr.Universe, rng *rand.Rand) attr.Set {
	s := u.Empty()
	for a := 0; a < u.Size(); a++ {
		if rng.Intn(2) == 0 {
			s = s.With(attr.ID(a))
		}
	}
	return s
}

func TestSharedIsKeyOf(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	keyOfY, keyOfX := SharedIsKeyOf(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	if !keyOfY {
		t.Error("D should be a key of DM")
	}
	if keyOfX {
		t.Error("D should not be a key of ED")
	}
	keyOfY, keyOfX = SharedIsKeyOf(s, u.MustSet("E", "D"), u.MustSet("E", "M"))
	if !keyOfY || !keyOfX {
		t.Error("E should be a key of both ED and EM")
	}
}

func TestMinimalComplementEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	y := MinimalComplement(s, u.MustSet("E", "D"))
	if !Complementary(s, u.MustSet("E", "D"), y) {
		t.Fatalf("MinimalComplement %v not complementary", y)
	}
	// Minimality: dropping any attribute breaks complementarity.
	y.Each(func(id attr.ID) bool {
		if Complementary(s, u.MustSet("E", "D"), y.Without(id)) {
			t.Errorf("complement %v not minimal: %v droppable", y, u.Name(id))
		}
		return true
	})
	// For ED under E->D, D->M the minimal complement found by ascending
	// scan is M alone? M∪ED = U and shared ∅ →→ ... no: ∅ must determine
	// ED or M. It does not, so the minimal complement keeps a pivot.
	if y.Len() > 2 {
		t.Errorf("minimal complement suspiciously large: %v", y)
	}
}

func TestMinimumComplementEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	y, ok := MinimumComplement(s, u.MustSet("E", "D"))
	if !ok {
		t.Fatal("no complement found")
	}
	if !Complementary(s, u.MustSet("E", "D"), y) {
		t.Fatalf("minimum complement %v not complementary", y)
	}
	// DM and EM both have 2 attributes; no 1-attribute complement exists
	// (M alone: shared ∅ does not determine either side; D alone does not
	// cover M... D∪ED ≠ U; E alone: E∪ED ≠ U).
	if y.Len() != 2 {
		t.Errorf("minimum complement size %d, want 2 (%v)", y.Len(), y)
	}
}

func TestQuickMinimumLEMinimal(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := dep.NewSet(u)
		for i := 0; i < 1+rng.Intn(4); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 5; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			sigma.Add(dep.NewFD(lhs, rhs))
		}
		s := MustSchema(u, sigma)
		x := randomSubset(u, rng)
		minimal := MinimalComplement(s, x)
		minimum, ok := MinimumComplement(s, x)
		if !ok {
			return false // trivial complement U always exists
		}
		if !Complementary(s, x, minimal) || !Complementary(s, x, minimum) {
			return false
		}
		return minimum.Len() <= minimal.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHasComplementOfSize(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	if _, ok := HasComplementOfSize(s, u.MustSet("E", "D"), 2); !ok {
		t.Error("size-2 complement of ED should exist")
	}
	if _, ok := HasComplementOfSize(s, u.MustSet("E", "D"), 1); ok {
		t.Error("size-1 complement of ED should not exist")
	}
	if y, ok := HasComplementOfSize(s, u.MustSet("E", "D"), 3); !ok || !y.Equal(u.All()) {
		t.Error("size-3 complement should be U")
	}
}

func TestReconstruct(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
		tp := make(relation.Tuple, 3)
		tp[0] = syms.Const(row[0])
		tp[1] = syms.Const(row[1])
		tp[2] = syms.Const(row[2])
		r.Insert(tp)
	}
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	got, err := Reconstruct(s, x, y, r.Project(x), r.Project(y))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Error("reconstruction by join failed")
	}
	// Non-complementary pair errors.
	if _, err := Reconstruct(s, u.MustSet("E", "M"), y, r.Project(u.MustSet("E", "M")), r.Project(y)); err == nil {
		t.Error("Reconstruct accepted non-complementary views")
	}
	// Wrong instance attributes error.
	if _, err := Reconstruct(s, x, y, r.Project(y), r.Project(y)); err == nil {
		t.Error("Reconstruct accepted mismatched instance")
	}
}

func TestComplementaryWithEFDs(t *testing.T) {
	// Theorem 10: Cost-Profitrate →e Price. The view {Cost, Rate} and
	// complement {Cost} are complementary: their union closure under the
	// EFD covers Price.
	u := attr.MustUniverse("Cost", "Rate", "Price")
	sigma := dep.MustParseSet(u, "Cost Rate =>e Price")
	s := MustSchema(u, sigma)
	x := u.MustSet("Cost", "Rate")
	y := u.MustSet("Cost")
	if !Complementary(s, x, y) {
		t.Error("EFD-covered views should be complementary")
	}
	// Without the EFD they are not.
	s2 := MustSchema(u, dep.MustParseSet(u, "Cost Rate -> Price"))
	if Complementary(s2, x, y) {
		t.Error("plain FD should not substitute for an EFD in condition (b)")
	}
	// Condition (a) must still hold: with shared part not determining
	// either side, not complementary even with full EFD coverage.
	sigma3 := dep.MustParseSet(u, "Cost =>e Price\nRate =>e Price")
	s3 := MustSchema(u, sigma3)
	if Complementary(s3, u.MustSet("Cost", "Price"), u.MustSet("Rate", "Price")) {
		t.Error("embedded MVD condition ignored")
	}
}

func TestImpliesEFD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.MustParseSet(u, "A =>e B\nB =>e C\nA -> C")
	s := MustSchema(u, sigma)
	// EFD transitivity: A =>e C via the EFD chain (Proposition 1).
	if !ImpliesEFD(s, dep.NewEFD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("EFD transitivity missed")
	}
	// The plain FD A -> C does NOT contribute: B =>e A not implied.
	if ImpliesEFD(s, dep.NewEFD(u.MustSet("C"), u.MustSet("A"))) {
		t.Error("unsound EFD implication")
	}
	// Proposition 2(b): plain FDs never imply EFDs.
	s2 := MustSchema(u, dep.MustParseSet(u, "A -> B"))
	if ImpliesEFD(s2, dep.NewEFD(u.MustSet("A"), u.MustSet("B"))) {
		t.Error("plain FD implied an EFD")
	}
	// Reflexive EFDs always hold.
	if !ImpliesEFD(s2, dep.NewEFD(u.MustSet("A", "B"), u.MustSet("A"))) {
		t.Error("reflexive EFD not implied")
	}
}

func TestImpliesDependency(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	if !ImpliesDependency(s, dep.NewFD(u.MustSet("E"), u.MustSet("M"))) {
		t.Error("E -> M should follow")
	}
	if ImpliesDependency(s, dep.NewFD(u.MustSet("M"), u.MustSet("E"))) {
		t.Error("M -> E should not follow")
	}
	if !ImpliesDependency(s, dep.NewMVD(u.MustSet("D"), u.MustSet("M"))) {
		t.Error("D ->> M should follow from D -> M")
	}
	if !ImpliesDependency(s, dep.MustJD(u.MustSet("E", "D"), u.MustSet("D", "M"))) {
		t.Error("*[ED, DM] should follow")
	}
	// EFDs as targets route through ImpliesEFD.
	if ImpliesDependency(s, dep.NewEFD(u.MustSet("E"), u.MustSet("D"))) {
		t.Error("plain FDs must not imply EFDs (Prop 2b)")
	}
}

func TestImpliesDependencyEFDAsFD(t *testing.T) {
	// Proposition 2(a): EFDs act as their FDs for ordinary implication.
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.MustParseSet(u, "A =>e B\nB -> C"))
	if !ImpliesDependency(s, dep.NewFD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("EFD-backed FD chain missed")
	}
}
