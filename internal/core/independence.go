package core

import (
	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/dep"
)

// Independent decides whether the decomposition (X, Y) is *independent*
// in Rissanen's sense [27 in the paper]: the join of any legal X-instance
// and any legal Y-instance (legal with respect to the projected
// dependencies) is legal, and the decomposition is lossless. The paper's
// §2 remark: independence is strictly stronger than complementarity —
// in the Employee–Department–Manager schema, (ED, EM) is complementary
// but not independent.
//
// For Σ of FDs this is Rissanen's classical characterization:
// (a) Σ ⊨ *[X, Y], and (b) the projections of Σ onto X and onto Y
// together imply Σ. Only FD schemas are supported.
func Independent(s *Schema, x, y attr.Set) bool {
	if !s.fdsOnly() {
		return false
	}
	if !x.Union(y).Equal(s.u.All()) {
		return false
	}
	fds := s.sigma.FDs()
	if !Complementary(s, x, y) {
		return false
	}
	projected := append(closure.Project(x, fds), closure.Project(y, fds)...)
	return closure.ImpliesAll(projected, fds)
}

// ProjectedFDs returns a minimal cover of the FDs implied by Σ on the
// attributes of x — the constraints a view instance must satisfy on its
// own. Exponential in |x| in the worst case (inherent to FD projection).
func ProjectedFDs(s *Schema, x attr.Set) []dep.FD {
	return closure.Project(x, s.sigma.WithFD().FDs())
}
