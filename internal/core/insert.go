package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Reason classifies why an update is or is not translatable.
type Reason int

// Decision reasons.
const (
	// ReasonOK: the update is translatable.
	ReasonOK Reason = iota
	// ReasonIdentity: the update does not change the view; the
	// translation is the identity (acceptability).
	ReasonIdentity
	// ReasonNoSharedMatch: condition (a) fails — t[X∩Y] is not in
	// π_{X∩Y} of the (remaining) view instance, so the complement cannot
	// stay constant.
	ReasonNoSharedMatch
	// ReasonSharedNotKeyOfComplement: condition (b) fails — Σ does not
	// imply X∩Y → Y, so the translated tuples are not uniquely
	// determined.
	ReasonSharedNotKeyOfComplement
	// ReasonSharedKeyOfView: condition (b) fails the other way — Σ
	// implies X∩Y → X, so V ∪ t is not the projection of any legal
	// instance.
	ReasonSharedKeyOfView
	// ReasonChaseCounterexample: condition (c) fails — the chase of
	// R(V, t, r, f) does not succeed for the witness (f, r), so some
	// legal database would be made inconsistent.
	ReasonChaseCounterexample
	// ReasonViewInconsistent: the given view instance is not the
	// projection of any legal instance (its padding chase clashes).
	ReasonViewInconsistent
	// ReasonNotGoodComplement: Test 2 only — the complement failed the
	// goodness check, so Test 2 rejects every insertion.
	ReasonNotGoodComplement
	// ReasonRepresentativeViolation: Test 2 only — the translated
	// insertion violates Σ on the canonical instance R₀.
	ReasonRepresentativeViolation
)

func (r Reason) String() string {
	switch r {
	case ReasonOK:
		return "translatable"
	case ReasonIdentity:
		return "identity (view unchanged)"
	case ReasonNoSharedMatch:
		return "t[X∩Y] not present in the view (condition a)"
	case ReasonSharedNotKeyOfComplement:
		return "Σ does not imply X∩Y → Y (condition b)"
	case ReasonSharedKeyOfView:
		return "Σ implies X∩Y → X (condition b)"
	case ReasonChaseCounterexample:
		return "chase counterexample (condition c)"
	case ReasonViewInconsistent:
		return "view instance is not a projection of a legal instance"
	case ReasonNotGoodComplement:
		return "complement is not good (Test 2 rejects all)"
	case ReasonRepresentativeViolation:
		return "insertion violates Σ on the canonical instance (Test 2)"
	}
	return fmt.Sprintf("Reason(%d)", int(r))
}

// Decision is the outcome of a translatability test.
type Decision struct {
	// Translatable reports whether the update can be translated under
	// the constant complement.
	Translatable bool
	// Reason explains the verdict.
	Reason Reason
	// WitnessFD and WitnessRow identify the failing (f, r) pair for
	// ReasonChaseCounterexample and ReasonRepresentativeViolation.
	WitnessFD  dep.FD
	WitnessRow relation.Tuple
	// ChaseCalls counts instance chases performed (benchmarking aid).
	ChaseCalls int
}

// padding is a view instance padded to the full universe with fresh
// labeled nulls in the U−X columns, chased to its canonical form.
type padding struct {
	pair *Pair
	// b bounds the chases run through this padding; nil is unlimited.
	b *budget.B
	// raw has row i aligned with view row i, nulls un-chased.
	raw *relation.Relation
	// res is the base chase result over raw.
	res *chase.Result
	// fds is Σ split to single-attribute RHS.
	fds []dep.FD
	// lastImpose is the substitution of the most recent imposeAndChase.
	lastImpose *imposeState
	// cache memoizes rebuild-strategy impositions by substitution
	// signature: after the base chase, distinct candidates frequently
	// impose identical equalities (e.g. all rows of one pivot group share
	// their null), so their chases coincide.
	cache map[string]*imposeState
	// prep indexes the canonical fixpoint for incremental impositions.
	prep *chase.Prepared
	// ovCache memoizes incremental overlays by pair signature.
	ovCache map[string]*chase.Overlay
}

// overlayFor imposes r[zOut] = μ[zOut] incrementally on the base fixpoint.
func (pd *padding) overlayFor(ri, mu int, zOut attr.Set) *chase.Overlay {
	if pd.prep == nil {
		// The column plans are a per-Pair constant (the padded relation
		// is always over U); only the row buckets are rebuilt here.
		pd.prep = chase.PrepareWithPlans(pd.res.Relation(), pd.fds, pd.pair.artifacts().plans)
		pd.ovCache = make(map[string]*chase.Overlay)
	}
	var pairs [][2]value.Value
	zOut.Each(func(id attr.ID) bool {
		a, b := pd.cell(ri, id), pd.cell(mu, id)
		if a != b {
			pairs = append(pairs, [2]value.Value{a, b})
		}
		return true
	})
	key := pairsSignature(pairs)
	if ov, ok := pd.ovCache[key]; ok {
		return ov
	}
	ov := pd.prep.WithEqualities(pairs)
	//constvet:allow cachebound -- padding state dies with one decide; entries bounded by its equality sets
	pd.ovCache[key] = ov
	return ov
}

// pairsSignature canonically serializes imposed pairs for memoization.
func pairsSignature(pairs [][2]value.Value) string {
	b := make([]byte, 0, len(pairs)*16)
	for _, pr := range pairs {
		for _, v := range pr {
			u := uint64(v)
			for i := 0; i < 8; i++ {
				b = append(b, byte(u>>(8*i)))
			}
		}
	}
	return string(b)
}

// newPadding pads v with fresh nulls and runs the base chase.
func (p *Pair) newPadding(v *relation.Relation) (*padding, error) {
	return p.newPaddingBudget(nil, v)
}

// newPaddingBudget is newPadding with the base chase (and every later
// imposition chase through the padding) bounded by b.
func (p *Pair) newPaddingBudget(b *budget.B, v *relation.Relation) (*padding, error) {
	u := p.schema.u
	var gen value.NullGen
	raw := relation.New(u.All())
	for _, t := range v.Tuples() {
		nt := make(relation.Tuple, u.Size())
		for c := 0; c < u.Size(); c++ {
			if vc := v.Col(attr.ID(c)); vc >= 0 {
				nt[c] = t[vc]
			} else {
				nt[c] = gen.Fresh()
			}
		}
		raw.Insert(nt)
	}
	if raw.Len() != v.Len() {
		return nil, errors.New("core: internal: padding changed cardinality")
	}
	fds := p.artifacts().splitFDs
	res, err := chase.InstanceBudget(b, raw, fds)
	if err != nil {
		return nil, err
	}
	if res.ConstClash() {
		return nil, errConstClash
	}
	return &padding{pair: p, b: b, raw: raw, res: res, fds: fds}, nil
}

var errConstClash = errors.New("core: view instance inconsistent with Σ")

// cell returns the canonical post-chase value of view row i, attribute id.
func (pd *padding) cell(i int, id attr.ID) value.Value {
	return pd.res.Find(pd.raw.Tuple(i)[pd.raw.Col(id)])
}

// DecideInsert decides, by the exact test of Theorem 3, whether inserting
// tuple t (over X, in ascending attribute order) into view instance v is
// translatable under constant complement Y. Σ must consist of FDs only.
//
// The test runs the chase of R(V, t, r, f) for every FD f = Z→A in Σ and
// every candidate tuple r of V; the insertion is translatable iff every
// such chase succeeds (equates two distinct constants of V, or forces
// r[A] = μ[A]). Worst-case O(|V|³ log |V|) per the paper's Corollary.
func (p *Pair) DecideInsert(v *relation.Relation, t relation.Tuple) (*Decision, error) {
	return p.decideInsert(nil, v, t)
}

// DecideInsertCtx is DecideInsert bounded by a context: the base chase
// honors cancellation between passes and every candidate (f, r) chase
// charges a step, so the test aborts within one chase step of
// cancellation with an error wrapping ErrBudgetExceeded.
func (p *Pair) DecideInsertCtx(ctx context.Context, v *relation.Relation, t relation.Tuple) (*Decision, error) {
	return p.decideInsert(budget.New(ctx), v, t)
}

func (p *Pair) decideInsert(b *budget.B, v *relation.Relation, t relation.Tuple) (*Decision, error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, err
	}
	if err := p.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity %d, view arity %d", len(t), v.Width())
	}
	if v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, nil
	}
	d := &Decision{}
	mu, ok := p.findSharedMatch(v, t)
	if !ok {
		d.Reason = ReasonNoSharedMatch
		return d, nil
	}
	if r, done := p.checkConditionB(d); done {
		return r, nil
	}
	pd, err := p.newPaddingBudget(b, v)
	if err != nil {
		if errors.Is(err, errConstClash) {
			d.Reason = ReasonViewInconsistent
			return d, nil
		}
		return nil, err
	}
	d.ChaseCalls++

	for _, fp := range p.artifacts().fdPlans {
		if fp.skippable {
			continue // no candidate chase for this FD can fail (see fdPlan)
		}
		f, aID, zInX, zOutX, aInX := fp.fd, fp.aID, fp.zInX, fp.zOutX, fp.aInX
		for ri, row := range v.Tuples() {
			if !agreesOn(row, t, v, zInX) {
				continue
			}
			if aInX && row[v.Col(aID)] == t[v.Col(aID)] {
				continue // no violation possible through this r
			}
			if !aInX && ri == mu {
				continue // r = μ: r[A] = μ[A] trivially
			}
			// Impose r[Z∩(U−X)] = μ[Z∩(U−X)] on the chased base and
			// propagate (incremental overlay by default; full rebuild
			// + re-chase under ImposeRebuild, kept for the A5 ablation).
			if err := b.Step(1); err != nil {
				return nil, err
			}
			d.ChaseCalls++
			var success bool
			if p.strategy == ImposeRebuild {
				res, clash, err := pd.imposeAndChase(ri, mu, zOutX)
				if err != nil {
					return nil, err
				}
				success = clash
				if !success && res != nil {
					success = res.ConstClash()
					if !success && !aInX {
						success = res.Same(pd.subbed(ri, aID), pd.subbed(mu, aID))
					}
				}
			} else {
				ov := pd.overlayFor(ri, mu, zOutX)
				success = ov.ConstClash()
				if !success && !aInX {
					success = ov.Same(pd.cell(ri, aID), pd.cell(mu, aID))
				}
			}
			if !success {
				d.Reason = ReasonChaseCounterexample
				d.WitnessFD = f
				d.WitnessRow = row.Clone()
				return d, nil
			}
		}
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, nil
}

// findSharedMatch locates a tuple μ of v agreeing with t on X∩Y
// (condition (a)). Returns its row index.
func (p *Pair) findSharedMatch(v *relation.Relation, t relation.Tuple) (int, bool) {
	for ri, row := range v.Tuples() {
		if agreesOn(row, t, v, p.shared) {
			return ri, true
		}
	}
	return -1, false
}

// checkConditionB verifies condition (b) of Theorems 3/8/9, filling d and
// reporting whether the decision is final. The key checks are closure
// computations over the immutable schema, memoized per Pair.
func (p *Pair) checkConditionB(d *Decision) (*Decision, bool) {
	a := p.artifacts()
	keyOfY, keyOfX := a.keyOfY, a.keyOfX
	if keyOfX {
		d.Reason = ReasonSharedKeyOfView
		return d, true
	}
	if !keyOfY {
		d.Reason = ReasonSharedNotKeyOfComplement
		return d, true
	}
	return nil, false
}

// agreesOn reports whether view row and tuple t agree on the given
// attributes (all must be view attributes).
func agreesOn(row, t relation.Tuple, v *relation.Relation, on attr.Set) bool {
	ok := true
	on.Each(func(id attr.ID) bool {
		if c := v.Col(id); row[c] != t[c] {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// subst is a value substitution built during imposition.
type subst map[value.Value]value.Value

func (s subst) resolve(v value.Value) value.Value {
	for {
		n, ok := s[v]
		if !ok {
			return v
		}
		v = n
	}
}

// imposeState is the substitution applied for the last imposeAndChase, so
// the caller can resolve designated cells.
type imposeState struct {
	sub subst
	res *chase.Result
}

// imposeAndChase equates r's and μ's canonical values on the columns of
// zOut, then re-chases. It reports (result, immediateClash): if imposing
// already equates two distinct constants, it returns (nil, true). The
// re-chase runs under the padding's budget; a budget trip surfaces as
// the error.
func (pd *padding) imposeAndChase(ri, mu int, zOut attr.Set) (*chase.Result, bool, error) {
	sub := make(subst)
	clash := false
	zOut.Each(func(id attr.ID) bool {
		a := sub.resolve(pd.cell(ri, id))
		b := sub.resolve(pd.cell(mu, id))
		if a == b {
			return true
		}
		if a.IsConst() && b.IsConst() {
			clash = true
			return false
		}
		// Constant wins; among nulls the smaller index.
		if b.IsConst() || (!a.IsConst() && b > a) {
			a, b = b, a
		}
		sub[b] = a
		return true
	})
	if clash {
		pd.lastImpose = nil
		return nil, true, nil
	}
	if len(sub) == 0 {
		// Nothing new was imposed (Z ∩ (U−X) empty, or the cells already
		// coincide after the base chase): the base fixpoint is already
		// the chase of R(V, t, r, f). Skipping the re-chase turns the
		// common Z ⊆ X case from O(|Σ|·|V|) into O(1) per candidate.
		pd.lastImpose = &imposeState{sub: sub, res: pd.res}
		return pd.res, false, nil
	}
	if st, ok := pd.cache[sub.signature()]; ok {
		pd.lastImpose = st
		return st.res, false, nil
	}
	rebuilt := relation.New(pd.raw.Attrs())
	for i := 0; i < pd.raw.Len(); i++ {
		row := pd.raw.Tuple(i)
		nt := make(relation.Tuple, len(row))
		for c, v := range row {
			nt[c] = sub.resolve(pd.res.Find(v))
		}
		rebuilt.Insert(nt)
	}
	res, err := chase.InstanceBudget(pd.b, rebuilt, pd.fds)
	if err != nil {
		return nil, false, err
	}
	st := &imposeState{sub: sub, res: res}
	if pd.cache == nil {
		pd.cache = make(map[string]*imposeState)
	}
	//constvet:allow cachebound -- padding state dies with one decide; entries bounded by its substitutions
	pd.cache[sub.signature()] = st
	pd.lastImpose = st
	return res, false, nil
}

// signature canonically serializes the substitution for memoization.
func (s subst) signature() string {
	type pair struct{ from, to value.Value }
	ps := make([]pair, 0, len(s))
	for f, t := range s {
		ps = append(ps, pair{f, s.resolve(t)})
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].from != ps[j].from {
			return ps[i].from < ps[j].from
		}
		return ps[i].to < ps[j].to
	})
	b := make([]byte, 0, len(ps)*16)
	for _, p := range ps {
		for i := 0; i < 8; i++ {
			b = append(b, byte(uint64(p.from)>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			b = append(b, byte(uint64(p.to)>>(8*i)))
		}
	}
	return string(b)
}

// subbed resolves a view row's canonical cell through the last
// imposition's substitution.
func (pd *padding) subbed(i int, id attr.ID) value.Value {
	v := pd.cell(i, id)
	if pd.lastImpose != nil {
		v = pd.lastImpose.sub.resolve(v)
	}
	return v
}

// canonicalInstance returns the canonical legal instance R₀ obtained by
// padding and chasing the view instance (used by Test 2 and by the
// reconstruction of translated tuples at the instance level).
func (pd *padding) canonicalInstance() *relation.Relation {
	return pd.res.Relation()
}

// ViewConsistent reports whether v is the X-projection of some legal
// instance of the schema: the chase of v padded with fresh nulls derives
// no contradiction. Σ must consist of FDs only. The translatability tests
// assume a consistent view instance (the "current instance of the view" of
// §3); DecideInsert detects inconsistency itself, the cheaper Test 1 does
// not.
func ViewConsistent(s *Schema, x attr.Set, v *relation.Relation) (bool, error) {
	if !s.fdsOnly() {
		return false, errors.New("core: ViewConsistent requires Σ of FDs only")
	}
	if !v.Attrs().Equal(x) {
		return false, fmt.Errorf("core: view instance over %v, want %v", v.Attrs(), x)
	}
	p := &Pair{schema: s, x: x, y: s.u.All(), shared: x}
	_, err := p.newPadding(v)
	if errors.Is(err, errConstClash) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// ApplyInsert performs the unique translation T_u[R] = R ∪ t*π_Y(R) of
// Theorem 3 on an actual database instance. It verifies that the result is
// legal and that the complement stayed constant, returning an error
// otherwise (callers normally run DecideInsert on π_X(R) first).
func (p *Pair) ApplyInsert(r *relation.Relation, t relation.Tuple) (*relation.Relation, error) {
	out, v, err := p.translateInsert(r, t)
	if err != nil {
		return nil, err
	}
	if ok, bad := p.schema.Legal(out); !ok {
		return nil, fmt.Errorf("core: translated insertion violates %v", bad)
	}
	if !out.Project(p.y).Equal(r.Project(p.y)) {
		return nil, errors.New("core: translated insertion changed the complement")
	}
	if !out.Project(p.x).Equal(v.Union(relation.Singleton(p.x, t))) {
		return nil, errors.New("core: translated insertion did not implement the view update")
	}
	return out, nil
}

// translateInsert computes T_u[R] = R ∪ t*π_Y(R) and the view π_X(R)
// without the defensive re-verification of ApplyInsert. Session.ApplyCtx
// uses it directly and verifies legality and complement constancy once
// at the session layer instead of twice per update.
func (p *Pair) translateInsert(r *relation.Relation, t relation.Tuple) (out, v *relation.Relation, err error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, nil, err
	}
	if !r.Attrs().Equal(p.schema.u.All()) {
		return nil, nil, errors.New("core: database instance must be over U")
	}
	v = r.Project(p.x)
	if v.Contains(t) {
		return r.Clone(), v, nil // acceptability: view unchanged, database unchanged
	}
	joined, err := p.translatedTuples(r, t)
	if err != nil {
		return nil, nil, err
	}
	out = r.Clone()
	for _, nt := range joined.Tuples() {
		// Tuples are immutable once inserted (relation's sharing
		// invariant), so the joined tuples can be shared, not copied.
		out.Insert(nt)
	}
	return out, v, nil
}

// translatedTuples computes t*π_Y(R): the database tuples whose X part is
// t and whose Y part comes from the complement rows matching t on X∩Y.
func (p *Pair) translatedTuples(r *relation.Relation, t relation.Tuple) (*relation.Relation, error) {
	vy := r.Project(p.y)
	tx := relation.Singleton(p.x, t)
	joined := tx.Join(vy)
	if joined.Len() == 0 {
		return nil, errors.New("core: no complement tuple matches t on X∩Y (condition a)")
	}
	return joined, nil
}
