package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestManagerRecommendEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	m := NewManager(s)
	recs := m.Recommend(u.MustSet("E", "D"))
	if len(recs) < 2 {
		t.Fatalf("got %d recommendations, want ≥ 2 (DM and EM)", len(recs))
	}
	for _, r := range recs {
		if !Complementary(s, u.MustSet("E", "D"), r.Y) {
			t.Errorf("recommended non-complement %v", r.Y)
		}
		if r.Size != r.Y.Len() {
			t.Errorf("size field wrong for %v", r.Y)
		}
	}
	// Both DM and EM are size-2 minimums and good; ranking must put a
	// good one first.
	if !recs[0].Good {
		t.Errorf("top recommendation %+v not good", recs[0])
	}
	seen := map[string]bool{}
	for _, r := range recs {
		seen[r.Y.String()] = true
	}
	if !seen["D M"] || !seen["E M"] {
		t.Errorf("missing expected complements: %v", seen)
	}
}

func TestManagerRegisterAndRoute(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	m := NewManager(s)
	x := u.MustSet("E", "D")
	p, err := m.RegisterRecommended(x)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Lookup(x)
	if !ok || got != p {
		t.Fatal("lookup failed")
	}
	if len(m.Views()) != 1 {
		t.Errorf("views = %v", m.Views())
	}
	// Route an update through the registered pair.
	syms := value.NewSymbols()
	db := relation.New(u.All())
	db.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	sess, err := NewSession(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Apply(Insert(relation.Tuple{syms.Const("ann"), syms.Const("toys")})); err != nil {
		t.Fatalf("routed insert failed: %v", err)
	}
}

func TestManagerRegisterRejectsNonComplement(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	m := NewManager(s)
	if _, err := m.Register(u.MustSet("E", "M"), u.MustSet("D", "M")); err == nil {
		t.Error("non-complement registered")
	}
}

func TestManagerExactSearchLimit(t *testing.T) {
	// With the limit below |U|, only the minimal complement is offered.
	s := edmSchema(t)
	u := s.Universe()
	m := NewManager(s)
	m.SetExactSearchLimit(1)
	recs := m.Recommend(u.MustSet("E", "D"))
	if len(recs) != 1 {
		t.Fatalf("got %d recommendations with search disabled, want 1", len(recs))
	}
	if recs[0].Minimum {
		t.Error("minimum flag set without exact search")
	}
}

func TestQuickManagerRecommendationsValid(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := dep.NewSet(u)
		for i := 0; i < 1+rng.Intn(4); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 5; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			sigma.Add(dep.NewFD(lhs, rhs))
		}
		s := MustSchema(u, sigma)
		m := NewManager(s)
		x := randomSubset(u, rng)
		recs := m.Recommend(x)
		if len(recs) == 0 {
			return false // U is always a complement, so ≥1 recommendation
		}
		minSize := -1
		for _, r := range recs {
			if !Complementary(s, x, r.Y) {
				return false
			}
			if r.Minimum {
				if minSize == -1 || r.Size < minSize {
					minSize = r.Size
				}
			}
		}
		// Every minimum-flagged recommendation has the same (smallest)
		// size.
		for _, r := range recs {
			if r.Minimum && r.Size != minSize {
				return false
			}
			if r.Size < minSize && minSize != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecideImpliesApplicable: on the canonical chased instance R₀ of
// a consistent view, a translatable decision implies ApplyInsert succeeds
// and an untranslatable chase verdict implies it can fail for *some* legal
// completion (not necessarily R₀) — so we check only the positive
// direction, which must be universal.
func TestQuickDecideImpliesApplicable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		d, err := p.DecideInsert(v, tup)
		if err != nil || !d.Translatable {
			return true
		}
		// Build R₀ by padding + chasing through ViewConsistent's
		// machinery: reconstruct via a fresh padding.
		pd, err := p.newPadding(v)
		if err != nil {
			return false
		}
		r0 := pd.canonicalInstance()
		if legal, _ := p.Schema().Legal(r0); !legal {
			return false // chased canonical instance must be legal
		}
		if _, err := p.ApplyInsert(r0, tup); err != nil {
			return false // translatable but application failed on R₀
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
