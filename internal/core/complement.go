package core

import (
	"context"
	"errors"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
)

// Complementary decides whether π_X and π_Y are complementary views of the
// schema: whether π_X(R) and π_Y(R) jointly determine every legal R.
//
// For Σ of FDs and JDs this is Theorem 1: X, Y are complementary iff
// Σ ⊨ *[X, Y] (which requires X ∪ Y = U). With EFDs present it is
// Theorem 10: (a) Σ implies the embedded MVD X∩Y →→ X−Y | Y−X within
// X ∪ Y, and (b) Σ_F ⊨ X∪Y → U, where Σ_F holds the FDs underlying the
// EFDs of Σ (the part of U outside X ∪ Y must be explicitly computable).
func Complementary(s *Schema, x, y attr.Set) bool {
	ok, _ := ComplementaryBudget(nil, s, x, y)
	return ok
}

// ComplementaryBudget is Complementary under a budget: the tableau chase
// behind condition (a) honors cancellation between chase passes, and
// each call charges one step. A nil budget is unlimited; on exhaustion
// the error wraps ErrBudgetExceeded. The verdict is a pure function of
// (Σ, X, Y) and is memoized per schema (see cache.go); a memo hit still
// charges its step.
func ComplementaryBudget(b *budget.B, s *Schema, x, y attr.Set) (bool, error) {
	if err := b.Step(1); err != nil {
		return false, err
	}
	key := schemaMemoKey{s: s, kind: memoComplementary, x: setKey(x), y: setKey(y)}
	if v, ok := schemaMemoTable.get(key); ok {
		return v.(bool), nil
	}
	ok, err := complementaryCompute(b, s, x, y)
	if err == nil {
		schemaMemoTable.put(key, ok)
	}
	return ok, err
}

func complementaryCompute(b *budget.B, s *Schema, x, y attr.Set) (bool, error) {
	// Condition (b): (X∪Y)⁺ under the EFD-derived FDs covers U. Without
	// EFDs this degenerates to X ∪ Y = U, as in Theorem 1.
	var efdFDs []dep.FD
	for _, e := range s.sigma.EFDs() {
		efdFDs = append(efdFDs, e.FD())
	}
	if !closure.Closure(x.Union(y), efdFDs).Equal(s.u.All()) {
		return false, nil
	}
	// Condition (a): Σ ⊨ X∩Y →→ X−Y | Y−X embedded in X∪Y. EFDs
	// participate as their underlying FDs (Proposition 2(a)). On FD-only
	// schemas with X∪Y = U, use the dependency-basis fast path.
	sigma := s.sigma.WithFD()
	if !sigma.HasJDs() && x.Union(y).Equal(s.u.All()) {
		return chase.FDOnlyImpliesMVD(sigma.FDs(), dep.NewMVD(x.Intersect(y), x)), nil
	}
	return chase.ImpliesEmbeddedMVDBudget(b, sigma, x, y)
}

// SharedIsKeyOf reports whether Σ ⊨ X∩Y → Y, the "common part is
// a superkey of the complement" half of the paper's characterization, and
// whether Σ ⊨ X∩Y → X. Both use EFDs as FDs. These are the condition (b)
// inputs of Theorems 3, 8 and 9.
func SharedIsKeyOf(s *Schema, x, y attr.Set) (keyOfY, keyOfX bool) {
	shared := x.Intersect(y)
	sigma := s.sigma.WithFD()
	toY := dep.NewFD(shared, y)
	toX := dep.NewFD(shared, x)
	if !sigma.HasJDs() {
		fds := sigma.FDs()
		return closure.Implies(fds, toY), closure.Implies(fds, toX)
	}
	return chase.ImpliesFD(sigma, toY), chase.ImpliesFD(sigma, toX)
}

// MinimalComplement computes a nonredundant complement of X (Corollary 2):
// starting from the trivial complement U, repeatedly drop any attribute
// whose removal preserves complementarity, in ascending attribute order.
// The result is minimal (no attribute can be dropped) but not necessarily
// minimum (Theorem 2 shows minimum is NP-complete).
func MinimalComplement(s *Schema, x attr.Set) attr.Set {
	y, _ := MinimalComplementBudget(nil, s, x)
	return y
}

// MinimalComplementBudget is MinimalComplement under a budget. Because
// the reduction starts from the trivial complement U and only commits
// verified-complementary shrinks, the returned set is a valid complement
// even when the budget trips mid-way — it is then merely less reduced
// than the Corollary 2 result, and the error (wrapping
// ErrBudgetExceeded) reports the early stop.
func MinimalComplementBudget(b *budget.B, s *Schema, x attr.Set) (attr.Set, error) {
	key := schemaMemoKey{s: s, kind: memoMinimal, x: setKey(x)}
	if v, ok := schemaMemoTable.get(key); ok {
		return v.(attr.Set), nil
	}
	y := s.u.All()
	for _, id := range s.u.All().IDs() {
		cand := y.Without(id)
		ok, err := ComplementaryBudget(b, s, x, cand)
		if err != nil {
			return y, err
		}
		if ok {
			y = cand
		}
	}
	schemaMemoTable.put(key, y)
	return y, nil
}

// MinimumComplement computes a complement of X with the fewest attributes
// by exhaustive search over subsets of U in increasing size — exponential
// in |U| in the worst case, as Theorem 2's NP-completeness predicts.
// The boolean reports whether any complement exists (the trivial
// complement U always works, so it is false only for pathological
// schemas).
func MinimumComplement(s *Schema, x attr.Set) (attr.Set, bool) {
	y, ok, _ := MinimumComplementBudget(nil, s, x)
	return y, ok
}

// MinimumComplementCtx is MinimumComplement bounded by a context: the
// exponential subset enumeration checks cancellation on every candidate
// and aborts with an error wrapping ErrBudgetExceeded.
func MinimumComplementCtx(ctx context.Context, s *Schema, x attr.Set) (attr.Set, bool, error) {
	return MinimumComplementBudget(budget.New(ctx), s, x)
}

// MinimumComplementBudget is MinimumComplement under a budget; each
// candidate subset charges one step.
func MinimumComplementBudget(b *budget.B, s *Schema, x attr.Set) (attr.Set, bool, error) {
	for k := 0; k <= s.u.Size(); k++ {
		var found attr.Set
		ok := false
		var stop error
		s.u.All().SubsetsOfSize(k, func(y attr.Set) bool {
			isComp, err := ComplementaryBudget(b, s, x, y)
			if err != nil {
				stop = err
				return false
			}
			if isComp {
				found, ok = y, true
				return false
			}
			return true
		})
		if stop != nil {
			return attr.Set{}, false, stop
		}
		if ok {
			return found, true, nil
		}
	}
	return attr.Set{}, false, nil
}

// HasComplementOfSize decides the decision problem of Theorem 2: is there
// a complement Y of X with |Y| = k? NP-complete in general.
func HasComplementOfSize(s *Schema, x attr.Set, k int) (attr.Set, bool) {
	var found attr.Set
	ok := false
	s.u.All().SubsetsOfSize(k, func(y attr.Set) bool {
		if Complementary(s, x, y) {
			found, ok = y, true
			return false
		}
		return true
	})
	return found, ok
}

// Reconstruct rebuilds the database instance from complementary view
// instances vx = π_X(R) and vy = π_Y(R). For Σ of FDs and JDs the
// reconstruction operator is the natural join (Theorem 1); with EFDs
// present the join covers X∪Y and the remaining attributes need witness
// functions, which this function does not take — it errors if X∪Y ≠ U.
func Reconstruct(s *Schema, x, y attr.Set, vx, vy *relation.Relation) (*relation.Relation, error) {
	if !Complementary(s, x, y) {
		return nil, errors.New("core: views are not complementary")
	}
	if !x.Union(y).Equal(s.u.All()) {
		return nil, errors.New("core: X ∪ Y ≠ U; reconstruction needs EFD witness functions")
	}
	if !vx.Attrs().Equal(x) || !vy.Attrs().Equal(y) {
		return nil, errors.New("core: instance attribute sets do not match the views")
	}
	return vx.Join(vy), nil
}
