package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/value"
)

func TestNonComplementaryWitnessEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	syms := value.NewSymbols()
	// (EM, DM) is not complementary.
	r, r2, err := NonComplementaryWitness(s, u.MustSet("E", "M"), u.MustSet("D", "M"), syms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equal(r2) {
		t.Fatal("witnesses equal")
	}
	for _, w := range []interface{ Len() int }{r, r2} {
		if w.Len() == 0 {
			t.Fatal("empty witness")
		}
	}
	if ok, bad := s.Legal(r); !ok {
		t.Fatalf("R violates %v", bad)
	}
	if ok, bad := s.Legal(r2); !ok {
		t.Fatalf("R' violates %v", bad)
	}
	x, y := u.MustSet("E", "M"), u.MustSet("D", "M")
	if !r.Project(x).Equal(r2.Project(x)) || !r.Project(y).Equal(r2.Project(y)) {
		t.Fatal("projections differ")
	}
}

func TestNonComplementaryWitnessCoverGap(t *testing.T) {
	// X ∪ Y ≠ U: witnessed by one-tuple instances differing outside.
	s := edmSchema(t)
	u := s.Universe()
	syms := value.NewSymbols()
	x, y := u.MustSet("E"), u.MustSet("D")
	// E ∪ D misses M... but E -> D -> M: is (E, D) complementary? E
	// determines everything, but X∪Y ≠ U means condition (b) fails for
	// FD-only schemas.
	if Complementary(s, x, y) {
		t.Skip("pair unexpectedly complementary")
	}
	r, r2, err := NonComplementaryWitness(s, x, y, syms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equal(r2) {
		t.Fatal("witnesses equal")
	}
	if !r.Project(x).Equal(r2.Project(x)) || !r.Project(y).Equal(r2.Project(y)) {
		t.Fatal("projections differ")
	}
}

func TestNonComplementaryWitnessRejectsComplementary(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	syms := value.NewSymbols()
	if _, _, err := NonComplementaryWitness(s, u.MustSet("E", "D"), u.MustSet("D", "M"), syms); err == nil {
		t.Error("witness produced for a complementary pair")
	}
}

func TestQuickNonComplementaryWitnessAlwaysFound(t *testing.T) {
	// For every non-complementary pair over random FD schemas, the
	// construction produces a valid witness (the constructive content of
	// Theorem 1's only-if direction).
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := dep.NewSet(u)
		for i := 0; i < 1+rng.Intn(3); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 4; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			sigma.Add(dep.NewFD(lhs, rhs))
		}
		s := MustSchema(u, sigma)
		x, y := randomSubset(u, rng), randomSubset(u, rng)
		if Complementary(s, x, y) {
			return true
		}
		syms := value.NewSymbols()
		r, r2, err := NonComplementaryWitness(s, x, y, syms)
		if err != nil {
			return false
		}
		if r.Equal(r2) {
			return false
		}
		okR, _ := s.Legal(r)
		okR2, _ := s.Legal(r2)
		return okR && okR2 &&
			r.Project(x).Equal(r2.Project(x)) &&
			r.Project(y).Equal(r2.Project(y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNonComplementaryWitnessWithJD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	s := MustSchema(u, sigma)
	x, y := u.MustSet("A", "C"), u.MustSet("B", "C")
	if Complementary(s, x, y) {
		t.Skip("pair unexpectedly complementary")
	}
	syms := value.NewSymbols()
	r, r2, err := NonComplementaryWitness(s, x, y, syms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Equal(r2) {
		t.Fatal("witnesses equal")
	}
}

func TestNonComplementaryWitnessRejectsEFDs(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	sigma := dep.NewSet(u)
	sigma.Add(dep.NewEFD(u.MustSet("A"), u.MustSet("B")))
	s := MustSchema(u, sigma)
	syms := value.NewSymbols()
	if _, _, err := NonComplementaryWitness(s, u.MustSet("A"), u.MustSet("B"), syms); err == nil {
		t.Error("EFD schema accepted")
	}
}
