package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestFindInsertComplementEDM(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	x := u.MustSet("E", "D")
	syms := value.NewSymbols()
	v := relation.New(x)
	for _, row := range [][]string{{"ed", "toys"}, {"flo", "toys"}, {"bob", "tools"}} {
		v.InsertVals(syms.Const(row[0]), syms.Const(row[1]))
	}
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	res, err := FindInsertComplement(s, x, v, tup, TestExact)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no complement found for a translatable insertion")
	}
	// The witness complement must actually render the insertion
	// translatable.
	p := MustPair(s, x, res.Complement)
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Errorf("witness complement %v does not work", res.Complement)
	}
	if res.Tests > v.Len() {
		t.Errorf("performed %d tests, bound is |V| = %d", res.Tests, v.Len())
	}
}

func TestFindInsertComplementNone(t *testing.T) {
	// Σ = {A -> B}: inserting a tuple that contradicts A -> B within the
	// view admits no complement.
	u := attr.MustUniverse("A", "B")
	s := MustSchema(u, dep.MustParseSet(u, "A -> B"))
	x := u.All()
	syms := value.NewSymbols()
	v := relation.New(x)
	v.InsertVals(syms.Const("a"), syms.Const("b1"))
	tup := relation.Tuple{syms.Const("a"), syms.Const("b2")}
	res, err := FindInsertComplement(s, x, v, tup, TestExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("found complement %v for an inherently illegal insertion", res.Complement)
	}
}

func TestFindInsertComplementCandidateBound(t *testing.T) {
	// Candidates are deduplicated W_r sets: with every view tuple sharing
	// the same agreement pattern, only one candidate is examined.
	u := attr.MustUniverse("A", "B")
	s := MustSchema(u, dep.NewSet(u))
	x := u.All()
	syms := value.NewSymbols()
	v := relation.New(x)
	for i := 0; i < 10; i++ {
		v.InsertVals(syms.Const("a"+string(rune('0'+i))), syms.Const("b"))
	}
	tup := relation.Tuple{syms.Const("anew"), syms.Const("b")}
	res, err := FindInsertComplement(s, x, v, tup, TestExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 1 {
		t.Errorf("candidates = %d, want 1 (all W_r equal)", res.Candidates)
	}
	if !res.Found {
		t.Error("X=U insertions are always translatable under Y = W ∪ ∅ with Σ empty")
	}
}

func TestQuickFindComplementSoundAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		s := p.Schema()
		x := p.ViewAttrs()
		res, err := FindInsertComplement(s, x, v, tup, TestExact)
		if err != nil {
			return false
		}
		if res.Tests > v.Len() || res.Candidates > v.Len() {
			return false
		}
		if !res.Found {
			return true
		}
		pair, err := NewPair(s, x, res.Complement)
		if err != nil {
			return false
		}
		d, err := pair.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		return d.Translatable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickFindComplementCompleteness(t *testing.T) {
	// Theorem 6 completeness: if FindInsertComplement fails, then NO
	// complement of the form W ∪ (U−X) with W ⊆ X renders the insertion
	// translatable (check by enumerating all W on small X).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		s := p.Schema()
		x := p.ViewAttrs()
		res, err := FindInsertComplement(s, x, v, tup, TestExact)
		if err != nil {
			return false
		}
		if res.Found {
			return true
		}
		rest := s.Universe().All().Diff(x)
		okAll := true
		x.Subsets(func(w attr.Set) bool {
			y := w.Union(rest)
			if !Complementary(s, x, y) {
				return true
			}
			pair, err := NewPair(s, x, y)
			if err != nil {
				return true
			}
			d, err := pair.DecideInsert(v, tup)
			if err == nil && d.Translatable {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFindInsertComplementKinds(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	x := u.MustSet("E", "D")
	syms := value.NewSymbols()
	v := relation.New(x)
	v.InsertVals(syms.Const("ed"), syms.Const("toys"))
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	for _, kind := range []TestKind{TestExact, TestOne, TestTwo} {
		res, err := FindInsertComplement(s, x, v, tup, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Found {
			t.Errorf("%v: no complement found", kind)
		}
	}
}

func TestTestKindString(t *testing.T) {
	if TestExact.String() != "exact" || TestOne.String() != "test1" || TestTwo.String() != "test2" {
		t.Error("TestKind strings wrong")
	}
	if TestKind(9).String() != "TestKind(9)" {
		t.Error("fallback wrong")
	}
}
