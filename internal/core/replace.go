package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/relation"
)

// DecideReplace decides, by Theorem 9, whether replacing tuple t1 by tuple
// t2 in view instance v is translatable under constant complement Y.
//
// Case 1 (t1[X∩Y] ≠ t2[X∩Y]): behaves like a deletion of t1 plus an
// insertion of t2 — conditions (a) and (b) apply, and condition (c) runs
// the chase of R(V, t2, r, f) for every FD f and every r ≠ t1.
//
// Case 2 (t1[X∩Y] = t2[X∩Y]): conditions (a) and (b) are vacuous; only
// the chase condition (c) is tested.
func (p *Pair) DecideReplace(v *relation.Relation, t1, t2 relation.Tuple) (*Decision, error) {
	return p.decideReplace(nil, v, t1, t2)
}

// DecideReplaceCtx is DecideReplace bounded by a context; see
// DecideInsertCtx for the cancellation granularity. On exhaustion the
// error wraps ErrBudgetExceeded.
func (p *Pair) DecideReplaceCtx(ctx context.Context, v *relation.Relation, t1, t2 relation.Tuple) (*Decision, error) {
	return p.decideReplace(budget.New(ctx), v, t1, t2)
}

func (p *Pair) decideReplace(b *budget.B, v *relation.Relation, t1, t2 relation.Tuple) (*Decision, error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, err
	}
	if err := p.checkViewInstance(v); err != nil {
		return nil, err
	}
	if len(t1) != v.Width() || len(t2) != v.Width() {
		return nil, fmt.Errorf("core: tuple arity mismatch with view arity %d", v.Width())
	}
	if !v.Contains(t1) {
		return nil, errors.New("core: replaced tuple t1 is not in the view")
	}
	if v.Contains(t2) {
		return nil, errors.New("core: replacement tuple t2 is already in the view")
	}
	d := &Decision{}
	sameShared := agreesOnTuples(t1, t2, v, p.shared)
	if !sameShared {
		// Case 1: conditions (a) and (b).
		// (a) t1[X∩Y] must survive in V − t1, and t2[X∩Y] must exist in V.
		t1Survives := false
		t2Present := false
		for _, row := range v.Tuples() {
			if !row.Equal(t1) && agreesOn(row, t1, v, p.shared) {
				t1Survives = true
			}
			if agreesOn(row, t2, v, p.shared) {
				t2Present = true
			}
		}
		if !t1Survives || !t2Present {
			d.Reason = ReasonNoSharedMatch
			return d, nil
		}
		if r, done := p.checkConditionB(d); done {
			return r, nil
		}
	}
	// Condition (c): chase R(V, t2, r, f) for all f ∈ Σ, r ∈ V, r ≠ t1.
	pd, err := p.newPaddingBudget(b, v)
	if err != nil {
		if errors.Is(err, errConstClash) {
			d.Reason = ReasonViewInconsistent
			return d, nil
		}
		return nil, err
	}
	d.ChaseCalls++
	// μ: a view tuple agreeing with t2 on X∩Y.
	mu := -1
	for ri, row := range v.Tuples() {
		if agreesOn(row, t2, v, p.shared) {
			mu = ri
			break
		}
	}
	if mu < 0 {
		d.Reason = ReasonNoSharedMatch
		return d, nil
	}
	for _, fp := range p.artifacts().fdPlans {
		if fp.skippable {
			continue // no candidate chase for this FD can fail (see fdPlan)
		}
		f, aID, zInX, zOutX, aInX := fp.fd, fp.aID, fp.zInX, fp.zOutX, fp.aInX
		for ri, row := range v.Tuples() {
			if row.Equal(t1) {
				continue // t1's database rows are removed by the translation
			}
			if !agreesOn(row, t2, v, zInX) {
				continue
			}
			if aInX && row[v.Col(aID)] == t2[v.Col(aID)] {
				continue
			}
			if !aInX && ri == mu {
				continue
			}
			if err := b.Step(1); err != nil {
				return nil, err
			}
			d.ChaseCalls++
			var success bool
			if p.strategy == ImposeRebuild {
				res, clash, err := pd.imposeAndChase(ri, mu, zOutX)
				if err != nil {
					return nil, err
				}
				success = clash
				if !success && res != nil {
					success = res.ConstClash()
					if !success && !aInX {
						success = res.Same(pd.subbed(ri, aID), pd.subbed(mu, aID))
					}
				}
			} else {
				ov := pd.overlayFor(ri, mu, zOutX)
				success = ov.ConstClash()
				if !success && !aInX {
					success = ov.Same(pd.cell(ri, aID), pd.cell(mu, aID))
				}
			}
			if !success {
				d.Reason = ReasonChaseCounterexample
				d.WitnessFD = f
				d.WitnessRow = row.Clone()
				return d, nil
			}
		}
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, nil
}

// agreesOnTuples reports whether two view tuples agree on the given view
// attributes.
func agreesOnTuples(a, b relation.Tuple, v *relation.Relation, on attr.Set) bool {
	return agreesOn(a, b, v, on)
}

// ApplyReplace performs the translation
// T_u[R] = R − t1*π_Y(R) ∪ t2*π_Y(R) of Theorem 9 on a database instance,
// verifying legality, complement constancy and the view semantics.
func (p *Pair) ApplyReplace(r *relation.Relation, t1, t2 relation.Tuple) (*relation.Relation, error) {
	out, v, err := p.translateReplace(r, t1, t2)
	if err != nil {
		return nil, err
	}
	if ok, bad := p.schema.Legal(out); !ok {
		return nil, fmt.Errorf("core: translated replacement violates %v", bad)
	}
	if !out.Project(p.y).Equal(r.Project(p.y)) {
		return nil, errors.New("core: translated replacement changed the complement")
	}
	want := v.Clone()
	want.Delete(t1)
	want.Insert(t2.Clone())
	if !out.Project(p.x).Equal(want) {
		return nil, errors.New("core: translated replacement did not implement the view update")
	}
	return out, nil
}

// translateReplace computes T_u[R] = R − t1*π_Y(R) ∪ t2*π_Y(R) and the
// view π_X(R) without ApplyReplace's defensive re-verification;
// Session.ApplyCtx verifies once at the session layer.
func (p *Pair) translateReplace(r *relation.Relation, t1, t2 relation.Tuple) (out, v *relation.Relation, err error) {
	if err := p.requireFDOnly(); err != nil {
		return nil, nil, err
	}
	if !r.Attrs().Equal(p.schema.u.All()) {
		return nil, nil, errors.New("core: database instance must be over U")
	}
	v = r.Project(p.x)
	if !v.Contains(t1) {
		return nil, nil, errors.New("core: replaced tuple t1 is not in the view")
	}
	// Both joins use the complement of the *original* R.
	vy := r.Project(p.y)
	doomed := relation.Singleton(p.x, t1).Join(vy)
	added := relation.Singleton(p.x, t2).Join(vy)
	if added.Len() == 0 {
		return nil, nil, errors.New("core: no complement tuple matches t2 on X∩Y (condition a)")
	}
	out = r.Clone()
	for _, dt := range doomed.Tuples() {
		out.Delete(dt)
	}
	for _, nt := range added.Tuples() {
		// Shared, not copied: tuples are immutable once inserted.
		out.Insert(nt)
	}
	return out, v, nil
}
