package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
)

// UpdateKind labels the three view-update operations of §3–§4.
type UpdateKind int

// Update kinds.
const (
	UpdateInsert UpdateKind = iota
	UpdateDelete
	UpdateReplace
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateReplace:
		return "replace"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// UpdateOp is one view update: an insertion or deletion of Tuple, or a
// replacement of Tuple by With.
type UpdateOp struct {
	Kind  UpdateKind
	Tuple relation.Tuple
	With  relation.Tuple
}

// Insert builds an insertion op.
func Insert(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateInsert, Tuple: t} }

// Delete builds a deletion op.
func Delete(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateDelete, Tuple: t} }

// Replace builds a replacement op.
func Replace(t1, t2 relation.Tuple) UpdateOp {
	return UpdateOp{Kind: UpdateReplace, Tuple: t1, With: t2}
}

// LogEntry records one applied (or rejected) update in a Session.
type LogEntry struct {
	Op       UpdateOp
	Decision *Decision
	Applied  bool
}

// Session drives a sequence of view updates against a database under a
// fixed constant complement, keeping the update log and checking the
// framework invariants after every step: the complement never changes
// and the database stays legal. The morphism property of Bancilhon–
// Spyratos fact (ii) manifests operationally: applying a sequence of
// updates equals applying their composition.
type Session struct {
	pair *Pair
	db   *relation.Relation
	// complement is π_Y of the initial database; it must never change.
	complement *relation.Relation
	log        []LogEntry
}

// NewSession starts a session on a legal database instance.
func NewSession(pair *Pair, db *relation.Relation) (*Session, error) {
	if ok, bad := pair.Schema().Legal(db); !ok {
		return nil, fmt.Errorf("core: initial database violates %v", bad)
	}
	return &Session{
		pair:       pair,
		db:         db.Clone(),
		complement: db.Project(pair.ComplementAttrs()),
	}, nil
}

// Database returns a snapshot of the current database.
func (s *Session) Database() *relation.Relation { return s.db.Clone() }

// View returns the current view instance.
func (s *Session) View() *relation.Relation { return s.db.Project(s.pair.ViewAttrs()) }

// Log returns the update log (shared slice; do not modify).
func (s *Session) Log() []LogEntry { return s.log }

// Decide tests an update without applying it.
func (s *Session) Decide(op UpdateOp) (*Decision, error) {
	return s.DecideCtx(context.Background(), op)
}

// DecideCtx is Decide bounded by a context: the chase-backed insert and
// replace tests honor cancellation within one chase step and return an
// error wrapping ErrBudgetExceeded instead of hanging.
func (s *Session) DecideCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	return s.decideCtx(ctx, op, nil)
}

// decideCtx is DecideCtx with an optional parent span (ApplyCtx nests
// its decision under the apply span).
func (s *Session) decideCtx(ctx context.Context, op UpdateOp, parent *obs.Span) (*Decision, error) {
	sp := childSpan(parent, "decide/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	v := s.View()
	var d *Decision
	var err error
	switch op.Kind {
	case UpdateInsert:
		d, err = s.pair.DecideInsertCtx(ctx, v, op.Tuple)
	case UpdateDelete:
		d, err = s.pair.DecideDeleteCtx(ctx, v, op.Tuple)
	case UpdateReplace:
		d, err = s.pair.DecideReplaceCtx(ctx, v, op.Tuple, op.With)
	default:
		return nil, fmt.Errorf("core: unknown update kind %v", op.Kind)
	}
	if m != nil {
		m.decideTotal.Inc()
		if validKind(op.Kind) {
			m.decideNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
		}
		if err == nil && d != nil {
			if d.Translatable {
				m.translatable.Inc()
			} else {
				m.rejected.Inc()
			}
		}
	}
	return d, err
}

// ErrRejected is returned by Apply for untranslatable updates; the
// database is unchanged and the rejection is logged.
var ErrRejected = errors.New("core: update rejected as untranslatable")

// Apply decides and, if translatable, performs one update, enforcing the
// constant-complement and legality invariants. On rejection it returns
// ErrRejected (wrapped with the reason).
func (s *Session) Apply(op UpdateOp) (*Decision, error) {
	return s.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply bounded by a context. A budget trip during the
// decision leaves the database and the log untouched; the returned
// error wraps ErrBudgetExceeded.
func (s *Session) ApplyCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	sp := rootSpan("apply/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	d, err := s.decideCtx(ctx, op, sp)
	if err != nil {
		return nil, err
	}
	if !d.Translatable {
		s.log = append(s.log, LogEntry{Op: op, Decision: d})
		return d, fmt.Errorf("%w: %s", ErrRejected, d.Reason)
	}
	tsp := sp.Child("translate/" + op.Kind.String())
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	var out *relation.Relation
	switch op.Kind {
	case UpdateInsert:
		out, err = s.pair.ApplyInsert(s.db, op.Tuple)
	case UpdateDelete:
		out, err = s.pair.ApplyDelete(s.db, op.Tuple)
	case UpdateReplace:
		out, err = s.pair.ApplyReplace(s.db, op.Tuple, op.With)
	}
	if m != nil && validKind(op.Kind) {
		m.applyNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
	}
	tsp.End()
	if err != nil {
		return d, err
	}
	if !out.Project(s.pair.ComplementAttrs()).Equal(s.complement) {
		return d, errors.New("core: internal: complement drifted")
	}
	if ok, bad := s.pair.Schema().Legal(out); !ok {
		return d, fmt.Errorf("core: internal: database became illegal (%v)", bad)
	}
	s.db = out
	s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
	if m != nil {
		m.applied.Inc()
	}
	return d, nil
}

// ApplyAll applies a sequence of updates, stopping at the first rejection
// or error. It returns the number applied.
func (s *Session) ApplyAll(ops []UpdateOp) (int, error) {
	return s.ApplyAllCtx(context.Background(), ops)
}

// ApplyAllCtx is ApplyAll bounded by a context, checked per update.
func (s *Session) ApplyAllCtx(ctx context.Context, ops []UpdateOp) (int, error) {
	for i, op := range ops {
		if _, err := s.ApplyCtx(ctx, op); err != nil {
			return i, err
		}
	}
	return len(ops), nil
}
