package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
)

// UpdateKind labels the three view-update operations of §3–§4.
type UpdateKind int

// Update kinds.
const (
	UpdateInsert UpdateKind = iota
	UpdateDelete
	UpdateReplace
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateReplace:
		return "replace"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// UpdateOp is one view update: an insertion or deletion of Tuple, or a
// replacement of Tuple by With.
type UpdateOp struct {
	Kind  UpdateKind
	Tuple relation.Tuple
	With  relation.Tuple
}

// Insert builds an insertion op.
func Insert(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateInsert, Tuple: t} }

// Delete builds a deletion op.
func Delete(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateDelete, Tuple: t} }

// Replace builds a replacement op.
func Replace(t1, t2 relation.Tuple) UpdateOp {
	return UpdateOp{Kind: UpdateReplace, Tuple: t1, With: t2}
}

// LogEntry records one applied (or rejected) update in a Session.
type LogEntry struct {
	Op       UpdateOp
	Decision *Decision
	Applied  bool
}

// Session drives a sequence of view updates against a database under a
// fixed constant complement, keeping the update log and checking the
// framework invariants after every step: the complement never changes
// and the database stays legal. The morphism property of Bancilhon–
// Spyratos fact (ii) manifests operationally: applying a sequence of
// updates equals applying their composition.
type Session struct {
	pair *Pair
	db   *relation.Relation
	// complement is π_Y of the initial database; it must never change.
	complement *relation.Relation
	log        []LogEntry
	// version counts applied ops; it identifies the current view
	// instance for the decision cache (a decision is a pure function of
	// the view instance and the op, and the view only changes when an
	// op is applied).
	version uint64
	// cache memoizes decisions by (version, op); the pipeline's
	// speculative decider seeds it via SeedDecision so the committed
	// re-decide is a lookup. Safe for concurrent seed/read; the rest of
	// the Session is not goroutine-safe.
	cache decisionCache
}

// NewSession starts a session on a legal database instance.
func NewSession(pair *Pair, db *relation.Relation) (*Session, error) {
	if ok, bad := pair.Schema().Legal(db); !ok {
		return nil, fmt.Errorf("core: initial database violates %v", bad)
	}
	return &Session{
		pair:       pair,
		db:         db.Clone(),
		complement: db.Project(pair.ComplementAttrs()),
	}, nil
}

// StateRef returns the session's current database without cloning.
// Callers must treat it as immutable. The ref stays valid and stable
// forever: a session never mutates a database in place — every apply
// builds a fresh relation and swaps the pointer — so refs taken before
// later applies still describe exactly the state they were taken at.
// The serving pipeline ships refs from its scratch session to the
// authoritative one (see AdoptSpeculated).
func (s *Session) StateRef() *relation.Relation { return s.db }

// AdoptSpeculated installs an apply outcome computed speculatively by
// another session that was replaying this session's exact state (the
// serving pipeline's scratch session): d is the decision and db the
// post-op database that session produced for op at version fromVersion.
// It returns false — leaving this session untouched — unless the
// speculation provably matches: the version must equal this session's
// current version (apply is deterministic, so equal pre-states give
// equal outcomes) and the adopted database must re-validate against the
// constant complement. On success the full decide/translate/verify is
// skipped; the speculating session already ran the identical
// session-level checks on the identical state.
func (s *Session) AdoptSpeculated(op UpdateOp, d *Decision, db *relation.Relation, fromVersion uint64) bool {
	if d == nil || db == nil || !d.Translatable || s.version != fromVersion {
		return false
	}
	// Cheap re-validation: complement constancy is the framework
	// invariant, checked here against OUR complement so a divergent
	// speculation can never smuggle in a drifted state.
	if !db.Project(s.pair.ComplementAttrs()).Equal(s.complement) {
		return false
	}
	s.db = db
	s.version++
	s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
	if m := coremetrics.Load(); m != nil {
		m.applied.Inc()
		m.adopted.Inc()
	}
	return true
}

// Database returns a snapshot of the current database.
func (s *Session) Database() *relation.Relation { return s.db.Clone() }

// View returns the current view instance.
func (s *Session) View() *relation.Relation { return s.db.Project(s.pair.ViewAttrs()) }

// Log returns the update log (shared slice; do not modify).
func (s *Session) Log() []LogEntry { return s.log }

// ViewVersion identifies the current view instance: it starts at 0 and
// increments exactly when an op is applied. Decisions are pure in
// (view version, op), which is what makes SeedDecision sound.
func (s *Session) ViewVersion() uint64 { return s.version }

// SeedDecision pre-populates the decision cache: a decide of op at the
// given view version will return d instead of recomputing. The caller
// asserts that d is what deciding op against the version's view
// instance would produce — the serving pipeline's speculative decider
// establishes this by replaying the same ops on an identical clone.
// Safe to call concurrently with decides on this session.
func (s *Session) SeedDecision(version uint64, op UpdateOp, d *Decision) {
	if d == nil {
		return
	}
	s.cache.put(version, opCacheKey(op), d)
}

// InvalidateDecisions empties the decision cache, forcing every
// subsequent decide to recompute. The pipeline calls it when a
// speculative decider diverged and its seeds can no longer be trusted.
func (s *Session) InvalidateDecisions() { s.cache.clear() }

// Decide tests an update without applying it.
func (s *Session) Decide(op UpdateOp) (*Decision, error) {
	return s.DecideCtx(context.Background(), op)
}

// DecideCtx is Decide bounded by a context: the chase-backed insert and
// replace tests honor cancellation within one chase step and return an
// error wrapping ErrBudgetExceeded instead of hanging.
func (s *Session) DecideCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	return s.decideCtx(ctx, op, nil)
}

// decideCtx is DecideCtx with an optional parent span (ApplyCtx nests
// its decision under the apply span).
func (s *Session) decideCtx(ctx context.Context, op UpdateOp, parent *obs.Span) (*Decision, error) {
	sp := childSpan(parent, "decide/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	key := opCacheKey(op)
	if d := s.cache.get(s.version, key); d != nil {
		if m != nil {
			m.decisionHits.Inc()
			m.decideTotal.Inc()
			if d.Translatable {
				m.translatable.Inc()
			} else {
				m.rejected.Inc()
			}
		}
		return d, nil
	}
	if m != nil {
		m.decisionMisses.Inc()
	}
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	v := s.View()
	var d *Decision
	var err error
	switch op.Kind {
	case UpdateInsert:
		d, err = s.pair.DecideInsertCtx(ctx, v, op.Tuple)
	case UpdateDelete:
		d, err = s.pair.DecideDeleteCtx(ctx, v, op.Tuple)
	case UpdateReplace:
		d, err = s.pair.DecideReplaceCtx(ctx, v, op.Tuple, op.With)
	default:
		return nil, fmt.Errorf("core: unknown update kind %v", op.Kind)
	}
	if m != nil {
		m.decideTotal.Inc()
		if validKind(op.Kind) {
			m.decideNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
		}
		if err == nil && d != nil {
			if d.Translatable {
				m.translatable.Inc()
			} else {
				m.rejected.Inc()
			}
		}
	}
	if err == nil && d != nil {
		s.cache.put(s.version, key, d)
	}
	return d, err
}

// ErrRejected is returned by Apply for untranslatable updates; the
// database is unchanged and the rejection is logged.
var ErrRejected = errors.New("core: update rejected as untranslatable")

// Apply decides and, if translatable, performs one update, enforcing the
// constant-complement and legality invariants. On rejection it returns
// ErrRejected (wrapped with the reason).
func (s *Session) Apply(op UpdateOp) (*Decision, error) {
	return s.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply bounded by a context. A budget trip during the
// decision leaves the database and the log untouched; the returned
// error wraps ErrBudgetExceeded.
func (s *Session) ApplyCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	sp := rootSpan("apply/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	d, err := s.decideCtx(ctx, op, sp)
	if err != nil {
		return nil, err
	}
	if !d.Translatable {
		s.log = append(s.log, LogEntry{Op: op, Decision: d})
		return d, fmt.Errorf("%w: %s", ErrRejected, d.Reason)
	}
	tsp := sp.Child("translate/" + op.Kind.String())
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	// The translate-only variants skip the Pair methods' defensive
	// re-verification: the complement-constancy and legality checks
	// below are the single verification layer for session applies.
	var out *relation.Relation
	switch op.Kind {
	case UpdateInsert:
		out, _, err = s.pair.translateInsert(s.db, op.Tuple)
	case UpdateDelete:
		out, _, err = s.pair.translateDelete(s.db, op.Tuple)
	case UpdateReplace:
		out, _, err = s.pair.translateReplace(s.db, op.Tuple, op.With)
	}
	if m != nil && validKind(op.Kind) {
		m.applyNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
	}
	tsp.End()
	if err != nil {
		return d, err
	}
	if !out.Project(s.pair.ComplementAttrs()).Equal(s.complement) {
		return d, errors.New("core: internal: complement drifted")
	}
	if ok, bad := s.pair.Schema().Legal(out); !ok {
		return d, fmt.Errorf("core: internal: database became illegal (%v)", bad)
	}
	s.db = out
	s.version++
	s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
	if m != nil {
		m.applied.Inc()
	}
	return d, nil
}

// ApplyAll applies a sequence of updates, stopping at the first rejection
// or error. It returns the number applied.
func (s *Session) ApplyAll(ops []UpdateOp) (int, error) {
	return s.ApplyAllCtx(context.Background(), ops)
}

// ApplyAllCtx is ApplyAll bounded by a context, checked per update.
func (s *Session) ApplyAllCtx(ctx context.Context, ops []UpdateOp) (int, error) {
	for i, op := range ops {
		if _, err := s.ApplyCtx(ctx, op); err != nil {
			return i, err
		}
	}
	return len(ops), nil
}
