package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
)

// UpdateKind labels the three view-update operations of §3–§4.
type UpdateKind int

// Update kinds.
const (
	UpdateInsert UpdateKind = iota
	UpdateDelete
	UpdateReplace
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateReplace:
		return "replace"
	}
	return fmt.Sprintf("UpdateKind(%d)", int(k))
}

// UpdateOp is one view update: an insertion or deletion of Tuple, or a
// replacement of Tuple by With.
type UpdateOp struct {
	Kind  UpdateKind
	Tuple relation.Tuple
	With  relation.Tuple
}

// Insert builds an insertion op.
func Insert(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateInsert, Tuple: t} }

// Delete builds a deletion op.
func Delete(t relation.Tuple) UpdateOp { return UpdateOp{Kind: UpdateDelete, Tuple: t} }

// Replace builds a replacement op.
func Replace(t1, t2 relation.Tuple) UpdateOp {
	return UpdateOp{Kind: UpdateReplace, Tuple: t1, With: t2}
}

// LogEntry records one applied (or rejected) update in a Session.
type LogEntry struct {
	Op       UpdateOp
	Decision *Decision
	Applied  bool
}

// Session drives a sequence of view updates against a database under a
// fixed constant complement, keeping the update log and checking the
// framework invariants after every step: the complement never changes
// and the database stays legal. The morphism property of Bancilhon–
// Spyratos fact (ii) manifests operationally: applying a sequence of
// updates equals applying their composition.
type Session struct {
	pair *Pair
	db   *relation.Relation
	// complement is π_Y of the initial database; it must never change.
	complement *relation.Relation
	log        []LogEntry
	// version counts applied ops; it identifies the current view
	// instance for the decision cache (a decision is a pure function of
	// the view instance and the op, and the view only changes when an
	// op is applied).
	version uint64
	// cache memoizes decisions by (version, op); the pipeline's
	// speculative decider seeds it via SeedDecision so the committed
	// re-decide is a lookup. Safe for concurrent seed/read; the rest of
	// the Session is not goroutine-safe.
	cache decisionCache
	// inc is the lazily built delta-maintenance state (see
	// incremental.go); nil means it will be rebuilt from the database on
	// the next incremental decide. incEnabled gates the whole path.
	inc        *incState
	incEnabled bool
	// dbShared marks that a StateRef (or adopted speculation) aliases
	// db: the incremental apply must copy-on-write before mutating so
	// outstanding refs keep describing the state they were taken at.
	dbShared bool
	// mview is the maintained materialized view π_X(db), patched per
	// applied op so readers never pay a full re-projection; nil means
	// invalidated (rebuilt lazily by the next ViewRef). Unlike the
	// incremental decide state it is maintained on the full apply path
	// too: every database swap flows through ApplyCtx/AdoptSpeculated,
	// and a translatable non-identity op changes the view by exactly
	// (op.Tuple out, op.With in) — the translation realizes precisely
	// the requested view instance.
	mview *relation.Relation
	// mviewShared marks that a ViewRef aliases mview: the next patch
	// must copy-on-write so published views stay immutable snapshots.
	mviewShared bool
}

// NewSession starts a session on a legal database instance.
func NewSession(pair *Pair, db *relation.Relation) (*Session, error) {
	if ok, bad := pair.Schema().Legal(db); !ok {
		return nil, fmt.Errorf("core: initial database violates %v", bad)
	}
	return &Session{
		pair:       pair,
		db:         db.Clone(),
		complement: db.Project(pair.ComplementAttrs()),
		incEnabled: true,
	}, nil
}

// SetIncremental enables or disables the delta-driven incremental
// decide/apply path (incremental.go). Disabling drops the maintained
// state; both paths produce identical decisions and databases, so the
// switch is safe at any point of a session's life.
func (s *Session) SetIncremental(on bool) {
	s.incEnabled = on
	if !on {
		s.inc = nil
	}
}

// IncrementalEnabled reports whether the incremental path can engage:
// it is switched on and Σ is FDs only (the non-FD case always takes
// the full path).
func (s *Session) IncrementalEnabled() bool {
	return s.incEnabled && s.pair.schema.fdsOnly()
}

// InvalidateDeltas drops the incrementally maintained delta state; the
// next incremental decide rebuilds it from the database. The serving
// pipeline calls it beside InvalidateDecisions whenever its scratch
// state diverged — a stale maintained image, like a stale decision
// seed, must never survive a resync.
func (s *Session) InvalidateDeltas() {
	s.invalidateInc()
	// The materialized reader view is maintained independently of the
	// incremental decide state, but a resync signals the surrounding
	// state is suspect; drop it too and re-project on the next read.
	s.invalidateMView()
}

// invalidateInc drops the maintained state, counting the invalidation.
func (s *Session) invalidateInc() {
	if s.inc == nil {
		return
	}
	s.inc = nil
	if m := coremetrics.Load(); m != nil {
		m.incInvalidate.Inc()
	}
}

// ensureInc returns the maintained state, rebuilding it if invalidated.
// nil means the incremental path cannot run (disabled, non-FD Σ, or a
// broken session invariant — then the path disables itself rather than
// rebuild-and-fail on every decide).
func (s *Session) ensureInc() *incState {
	if !s.incEnabled || !s.pair.schema.fdsOnly() {
		return nil
	}
	if s.inc != nil {
		return s.inc
	}
	st := buildIncState(s.pair, s.db, s.complement)
	if st == nil {
		s.incEnabled = false
		return nil
	}
	if m := coremetrics.Load(); m != nil {
		m.incRebuild.Inc()
	}
	s.inc = st
	return st
}

// StateRef returns the session's current database without cloning.
// Callers must treat it as immutable. The ref stays valid and stable
// forever: a session never mutates a database in place — every apply
// builds a fresh relation and swaps the pointer — so refs taken before
// later applies still describe exactly the state they were taken at.
// The serving pipeline ships refs from its scratch session to the
// authoritative one (see AdoptSpeculated).
func (s *Session) StateRef() *relation.Relation {
	// The incremental apply mutates the current relation in place;
	// marking it shared forces a copy-on-write first, preserving the
	// stability contract above.
	s.dbShared = true
	return s.db
}

// AdoptSpeculated installs an apply outcome computed speculatively by
// another session that was replaying this session's exact state (the
// serving pipeline's scratch session): d is the decision and db the
// post-op database that session produced for op at version fromVersion.
// It returns false — leaving this session untouched — unless the
// speculation provably matches: the version must equal this session's
// current version (apply is deterministic, so equal pre-states give
// equal outcomes) and the adopted database must re-validate against the
// constant complement. On success the full decide/translate/verify is
// skipped; the speculating session already ran the identical
// session-level checks on the identical state.
func (s *Session) AdoptSpeculated(op UpdateOp, d *Decision, db *relation.Relation, fromVersion uint64) bool {
	if d == nil || db == nil || !d.Translatable || s.version != fromVersion {
		return false
	}
	// Cheap re-validation: complement constancy is the framework
	// invariant, checked here against OUR complement so a divergent
	// speculation can never smuggle in a drifted state.
	if !db.Project(s.pair.ComplementAttrs()).Equal(s.complement) {
		return false
	}
	s.db = db
	// The adopted relation is owned by the speculating session and the
	// maintained delta state still images the replaced one. The
	// materialized reader view advances by the op's view delta.
	s.dbShared = true
	s.invalidateInc()
	s.patchMView(op, d)
	s.version++
	s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
	if m := coremetrics.Load(); m != nil {
		m.applied.Inc()
		m.adopted.Inc()
	}
	return true
}

// Database returns a snapshot of the current database.
func (s *Session) Database() *relation.Relation { return s.db.Clone() }

// ViewRef returns the current materialized view without re-projecting
// the database: the session maintains π_X(db) across applies by
// patching it with each op's view-level delta (see patchMView), paying
// one re-projection only when the image was invalidated. Callers must
// treat the result as immutable; like StateRef it stays valid and
// stable forever — the session copies-on-write before the next patch.
// This is the serving pipeline's read path: publishing a view after a
// committed batch costs O(|batch|), not O(|db|).
func (s *Session) ViewRef() *relation.Relation {
	if s.mview == nil {
		s.mview = s.db.Project(s.pair.x)
		if m := coremetrics.Load(); m != nil {
			m.viewRebuild.Inc()
		}
	}
	s.mviewShared = true
	return s.mview
}

// View returns the current view instance, owned by the caller.
func (s *Session) View() *relation.Relation { return s.ViewRef().Clone() }

// patchMView advances the maintained materialized view by one applied
// op. The op was decided translatable against the current view V, and
// the constant-complement translation realizes exactly the requested
// view instance — insert: V ∪ {t}, delete: V − {t}, replace:
// (V − {t1}) ∪ {t2} — so the patch is the op's own tuples; set
// semantics make it exact even when a tuple was already present or
// absent. Identity decisions change nothing and are skipped outright.
func (s *Session) patchMView(op UpdateOp, d *Decision) {
	if s.mview == nil {
		return // invalidated: the next ViewRef re-projects
	}
	if d != nil && d.Reason == ReasonIdentity {
		return
	}
	if s.mviewShared {
		s.mview = s.mview.Clone()
		s.mviewShared = false
	}
	switch op.Kind {
	case UpdateInsert:
		s.mview.Insert(op.Tuple.Clone())
	case UpdateDelete:
		s.mview.Delete(op.Tuple)
	case UpdateReplace:
		s.mview.Delete(op.Tuple)
		s.mview.Insert(op.With.Clone())
	default:
		// Unreachable for an applied op; drop the image rather than
		// serve a stale one.
		s.invalidateMView()
		return
	}
	if m := coremetrics.Load(); m != nil {
		m.viewPatch.Inc()
	}
}

// invalidateMView drops the maintained materialized view; the next
// ViewRef rebuilds it with one re-projection.
func (s *Session) invalidateMView() {
	s.mview = nil
	s.mviewShared = false
}

// Log returns the update log (shared slice; do not modify).
func (s *Session) Log() []LogEntry { return s.log }

// ViewVersion identifies the current view instance: it starts at 0 and
// increments exactly when an op is applied. Decisions are pure in
// (view version, op), which is what makes SeedDecision sound.
func (s *Session) ViewVersion() uint64 { return s.version }

// SeedDecision pre-populates the decision cache: a decide of op at the
// given view version will return d instead of recomputing. The caller
// asserts that d is what deciding op against the version's view
// instance would produce — the serving pipeline's speculative decider
// establishes this by replaying the same ops on an identical clone.
// Safe to call concurrently with decides on this session.
func (s *Session) SeedDecision(version uint64, op UpdateOp, d *Decision) {
	if d == nil {
		return
	}
	s.cache.put(version, opCacheKey(op), d)
}

// InvalidateDecisions empties the decision cache, forcing every
// subsequent decide to recompute. The pipeline calls it when a
// speculative decider diverged and its seeds can no longer be trusted.
func (s *Session) InvalidateDecisions() { s.cache.clear() }

// Decide tests an update without applying it.
func (s *Session) Decide(op UpdateOp) (*Decision, error) {
	return s.DecideCtx(context.Background(), op)
}

// DecideCtx is Decide bounded by a context: the chase-backed insert and
// replace tests honor cancellation within one chase step and return an
// error wrapping ErrBudgetExceeded instead of hanging.
func (s *Session) DecideCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	return s.decideCtx(ctx, op, nil)
}

// decideCtx is DecideCtx with an optional parent span (ApplyCtx nests
// its decision under the apply span).
func (s *Session) decideCtx(ctx context.Context, op UpdateOp, parent *obs.Span) (*Decision, error) {
	sp := childSpan(parent, "decide/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	key := opCacheKey(op)
	if d := s.cache.get(s.version, key); d != nil {
		if m != nil {
			m.decisionHits.Inc()
			m.decideTotal.Inc()
			if d.Translatable {
				m.translatable.Inc()
			} else {
				m.rejected.Inc()
			}
		}
		return d, nil
	}
	if m != nil {
		m.decisionMisses.Inc()
	}
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	if st := s.ensureInc(); st != nil {
		if d, ok := s.decideInc(ctx, st, op); ok {
			if m != nil {
				m.incDecide.Inc()
				m.decideTotal.Inc()
				if validKind(op.Kind) {
					m.decideNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
				}
				if d.Translatable {
					m.translatable.Inc()
				} else {
					m.rejected.Inc()
				}
			}
			s.cache.put(s.version, key, d)
			return d, nil
		}
		// The incremental path could not prove the canonical outcome
		// (counterexample witness, domain error, inconsistency): run the
		// full decide below.
		if m != nil {
			m.incFallback.Inc()
		}
	}
	v := s.View()
	var d *Decision
	var err error
	switch op.Kind {
	case UpdateInsert:
		d, err = s.pair.DecideInsertCtx(ctx, v, op.Tuple)
	case UpdateDelete:
		d, err = s.pair.DecideDeleteCtx(ctx, v, op.Tuple)
	case UpdateReplace:
		d, err = s.pair.DecideReplaceCtx(ctx, v, op.Tuple, op.With)
	default:
		return nil, fmt.Errorf("core: unknown update kind %v", op.Kind)
	}
	if m != nil {
		m.decideTotal.Inc()
		if validKind(op.Kind) {
			m.decideNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
		}
		if err == nil && d != nil {
			if d.Translatable {
				m.translatable.Inc()
			} else {
				m.rejected.Inc()
			}
		}
	}
	if err == nil && d != nil {
		s.cache.put(s.version, key, d)
	}
	return d, err
}

// ErrRejected is returned by Apply for untranslatable updates; the
// database is unchanged and the rejection is logged.
var ErrRejected = errors.New("core: update rejected as untranslatable")

// Apply decides and, if translatable, performs one update, enforcing the
// constant-complement and legality invariants. On rejection it returns
// ErrRejected (wrapped with the reason).
func (s *Session) Apply(op UpdateOp) (*Decision, error) {
	return s.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply bounded by a context. A budget trip during the
// decision leaves the database and the log untouched; the returned
// error wraps ErrBudgetExceeded.
func (s *Session) ApplyCtx(ctx context.Context, op UpdateOp) (*Decision, error) {
	sp := rootSpan("apply/", op.Kind)
	defer sp.End()
	m := coremetrics.Load()
	d, err := s.decideCtx(ctx, op, sp)
	if err != nil {
		return nil, err
	}
	if !d.Translatable {
		s.log = append(s.log, LogEntry{Op: op, Decision: d})
		return d, fmt.Errorf("%w: %s", ErrRejected, d.Reason)
	}
	tsp := sp.Child("translate/" + op.Kind.String())
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	// Delta path: apply the translation as (Δ⁺, Δ⁻) in O(|Δ|), with the
	// invariant checks scoped to the delta's keys. On any failure the
	// database is untouched and the full path below re-verifies from
	// scratch.
	if s.inc != nil && s.incEnabled {
		if s.applyInc(s.inc, op, d) {
			if m != nil {
				m.incApply.Inc()
				if validKind(op.Kind) {
					m.applyNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
				}
				m.applied.Inc()
			}
			tsp.End()
			s.patchMView(op, d)
			s.version++
			s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
			return d, nil
		}
		if m != nil {
			m.incFallback.Inc()
		}
	}
	// The translate-only variants skip the Pair methods' defensive
	// re-verification: the complement-constancy and legality checks
	// below are the single verification layer for session applies.
	var out *relation.Relation
	switch op.Kind {
	case UpdateInsert:
		out, _, err = s.pair.translateInsert(s.db, op.Tuple)
	case UpdateDelete:
		out, _, err = s.pair.translateDelete(s.db, op.Tuple)
	case UpdateReplace:
		out, _, err = s.pair.translateReplace(s.db, op.Tuple, op.With)
	}
	if m != nil && validKind(op.Kind) {
		m.applyNs[op.Kind].ObserveDuration(obs.SinceNS(t0))
	}
	tsp.End()
	if err != nil {
		return d, err
	}
	if !out.Project(s.pair.ComplementAttrs()).Equal(s.complement) {
		return d, errors.New("core: internal: complement drifted")
	}
	if ok, bad := s.pair.Schema().Legal(out); !ok {
		return d, fmt.Errorf("core: internal: database became illegal (%v)", bad)
	}
	// The full path swapped the database pointer under the maintained
	// delta state; drop it (rebuilt lazily on the next decide). The
	// materialized reader view survives: it advances by the op's view
	// delta regardless of which apply path ran.
	s.db = out
	s.dbShared = false
	s.invalidateInc()
	s.patchMView(op, d)
	s.version++
	s.log = append(s.log, LogEntry{Op: op, Decision: d, Applied: true})
	if m != nil {
		m.applied.Inc()
	}
	return d, nil
}

// ApplyAll applies a sequence of updates, stopping at the first rejection
// or error. It returns the number applied.
func (s *Session) ApplyAll(ops []UpdateOp) (int, error) {
	return s.ApplyAllCtx(context.Background(), ops)
}

// ApplyAllCtx is ApplyAll bounded by a context, checked per update.
func (s *Session) ApplyAllCtx(ctx context.Context, ops []UpdateOp) (int, error) {
	for i, op := range ops {
		if _, err := s.ApplyCtx(ctx, op); err != nil {
			return i, err
		}
	}
	return len(ops), nil
}
