package reductions

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/logic"
)

func TestTheorem2Forward(t *testing.T) {
	// Satisfiable formula: the encoded complement of size n+1 exists.
	phi := logic.MustCNF(3,
		logic.Clause{1, 2, 3},
		logic.Clause{-1, 2, 3},
	)
	red, err := BuildTheorem2(phi)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := phi.Solve()
	if !ok {
		t.Fatal("fixture should be satisfiable")
	}
	y := red.ComplementFromAssignment(h)
	if y.Len() != red.K {
		t.Fatalf("encoded complement size %d, want %d", y.Len(), red.K)
	}
	if !core.Complementary(red.Schema, red.X, y) {
		t.Error("encoded complement is not complementary")
	}
}

func TestTheorem2Backward(t *testing.T) {
	// Unsatisfiable formula: no complement of size n+1.
	phi := logic.MustCNF(1,
		logic.Clause{1},
		logic.Clause{-1},
	)
	red, err := BuildTheorem2(phi)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := core.HasComplementOfSize(red.Schema, red.X, red.K); ok {
		t.Error("size-(n+1) complement exists for an unsat formula")
	}
}

func TestQuickTheorem2Equivalence(t *testing.T) {
	// E4: complement of size n+1 exists iff φ satisfiable, on random
	// small formulas, with DPLL as the oracle.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phi := logic.Random3CNF(rng, 3, 2+rng.Intn(6))
		red, err := BuildTheorem2(phi)
		if err != nil {
			return false
		}
		_, hasComp := core.HasComplementOfSize(red.Schema, red.X, red.K)
		return hasComp == phi.Satisfiable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTheorem2DecodeRoundTrip(t *testing.T) {
	phi := logic.MustCNF(2, logic.Clause{1, 2})
	red, err := BuildTheorem2(phi)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := phi.Solve()
	y := red.ComplementFromAssignment(h)
	h2, ok := red.AssignmentFromComplement(y)
	if !ok {
		t.Fatal("decode failed")
	}
	for i := 1; i <= phi.Vars; i++ {
		if h[i] != h2[i] {
			t.Errorf("round trip changed x%d", i)
		}
	}
	// Non-literal-shaped sets decode to false.
	if _, ok := red.AssignmentFromComplement(red.X); ok {
		t.Error("decoded a malformed complement")
	}
}

func TestQuickTheorem4Equivalence(t *testing.T) {
	// E9: the exact chase test on the expanded Theorem 4 instance decides
	// exactly the ChasePredicts predicate (see the reproduction finding on
	// ChasePredicts — the paper claims equivalence with ∀∃ G, which fails
	// under standard chase semantics; TestTheorem4DeviationFromPaper
	// below pins the divergence).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2) // 3..4 vars → expansion ≤ 17 rows
		g := logic.Random3CNF(rng, n, 1+rng.Intn(6))
		k := rng.Intn(n + 1)
		red, err := BuildTheorem4(g, k)
		if err != nil {
			return false
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			return false
		}
		v := red.View.Expand()
		d, err := pair.DecideInsert(v, red.T)
		if err != nil {
			return false
		}
		return d.Translatable == red.ChasePredicts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomMixedCNF draws clauses of 1–3 distinct variables.
func randomMixedCNF(rng *rand.Rand, n, m int) *logic.CNF {
	clauses := make([]logic.Clause, m)
	for i := range clauses {
		w := 1 + rng.Intn(3)
		vars := rng.Perm(n)[:w]
		c := make(logic.Clause, w)
		for j, v := range vars {
			c[j] = logic.Lit(v + 1)
			if rng.Intn(2) == 0 {
				c[j] = c[j].Neg()
			}
		}
		clauses[i] = c
	}
	return logic.MustCNF(n, clauses...)
}

func TestQuickTheorem4EquivalenceMixedClauses(t *testing.T) {
	// Same as TestQuickTheorem4Equivalence but with unit and binary
	// clauses, which exercise the non-clique branches of ChasePredicts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		g := randomMixedCNF(rng, n, 1+rng.Intn(6))
		k := rng.Intn(n + 1)
		red, err := BuildTheorem4(g, k)
		if err != nil {
			return false
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			return false
		}
		d, err := pair.DecideInsert(red.View.Expand(), red.T)
		if err != nil {
			return false
		}
		return d.Translatable == red.ChasePredicts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickChasePredictsImpliedByForallExists(t *testing.T) {
	// One direction of the paper's Theorem 4 claim does hold: if
	// ∀X ∃Y G then the insertion is translatable (the chase predicate is
	// weaker than ∀∃).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(6))
		k := rng.Intn(n + 1)
		red, err := BuildTheorem4(g, k)
		if err != nil {
			return false
		}
		if !g.ForallExists(k) {
			return true
		}
		return red.ChasePredicts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTheorem4DeviationFromPaper(t *testing.T) {
	// REPRODUCTION FINDING (recorded in EXPERIMENTS.md): the literal
	// Theorem 4 gadget does not decide ∀∃ G. Witness:
	// G = (x₄ ∨ ¬x₂ ∨ ¬x₃) ∧ (¬x₄ ∨ ¬x₂ ∨ x₁) with k = 3. The prefix
	// x₁=F, x₂=T, x₃=T leaves clause 1 demanding x₄ and clause 2
	// demanding ¬x₄, so ∀∃ is false — yet each clause alone is satisfied
	// by some completion, the clause FDs' false-value buckets chain every
	// completion's F_j to s's within the prefix group, and the insertion
	// IS translatable.
	g := logic.MustCNF(4,
		logic.Clause{4, -2, -3},
		logic.Clause{-4, -2, 1},
	)
	red, err := BuildTheorem4(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.ForallExists(3) {
		t.Fatal("fixture should falsify ∀∃")
	}
	if !red.ChasePredicts() {
		t.Fatal("fixture should satisfy the chase predicate")
	}
	pair, err := core.NewPair(red.Schema, red.X, red.Y)
	if err != nil {
		t.Fatal(err)
	}
	d, err := pair.DecideInsert(red.View.Expand(), red.T)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Error("chase test rejected; the deviation analysis would be wrong")
	}
}

func TestTheorem4ViewShape(t *testing.T) {
	g := logic.MustCNF(3, logic.Clause{1, -2, 3})
	red, err := BuildTheorem4(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Expansion: 2^3 assignments + tuple s.
	v := red.View.Expand()
	if v.Len() != 9 {
		t.Fatalf("expanded view has %d tuples, want 9", v.Len())
	}
	// Description is linear in |U| while expansion is exponential.
	if red.View.DescriptionSize() >= v.Len()*v.Width() {
		t.Log("description not smaller than expansion at this size (expected for tiny n)")
	}
	if !v.Contains(red.T) {
		// t must NOT be in the view (it is the tuple being inserted).
		t.Log("t in view")
	}
	if v.Contains(red.T) {
		t.Error("inserted tuple already denoted by the view")
	}
}

func TestQuickTheorem5Equivalence(t *testing.T) {
	// E10: Test 1 accepts the insertion iff G is unsatisfiable.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(6))
		red, err := BuildTheorem5(g)
		if err != nil {
			return false
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			return false
		}
		v := red.View.Expand()
		d, err := pair.DecideInsertTest1(v, red.T)
		if err != nil {
			return false
		}
		return d.Translatable == !g.Satisfiable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickTheorem7Equivalence(t *testing.T) {
	// E12: a complement rendering the insertion translatable exists iff G
	// is satisfiable.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(4))
		red, err := BuildTheorem7(g)
		if err != nil {
			return false
		}
		v := red.View.Expand()
		res, err := core.FindInsertComplement(red.Schema, red.X, v, red.T, core.TestExact)
		if err != nil {
			return false
		}
		return res.Found == g.Satisfiable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildValidation(t *testing.T) {
	wide := logic.MustCNF(4, logic.Clause{1, 2, 3, 4})
	if _, err := BuildTheorem2(wide); err == nil {
		t.Error("non-3CNF accepted by Theorem 2")
	}
	if _, err := BuildTheorem4(wide, 0); err == nil {
		t.Error("non-3CNF accepted by Theorem 4")
	}
	if _, err := BuildTheorem5(wide); err == nil {
		t.Error("non-3CNF accepted by Theorem 5")
	}
	if _, err := BuildTheorem7(wide); err == nil {
		t.Error("non-3CNF accepted by Theorem 7")
	}
	ok3 := logic.MustCNF(3, logic.Clause{1, 2, 3})
	if _, err := BuildTheorem4(ok3, 7); err == nil {
		t.Error("out-of-range k accepted by Theorem 4")
	}
}
