// Package reductions implements the paper's four hardness reductions as
// executable constructions, so each hardness theorem can be validated in
// both directions against the SAT/QBF solvers of internal/logic:
//
//	Theorem 2: 3-SAT ≤p minimum-complement (size n+1 complement iff sat)
//	Theorem 4: ∀∃-3-CNF ≤p insertion translatability on succinct views
//	Theorem 5: 3-UNSAT ≤p Test-1 acceptance on succinct views
//	Theorem 7: 3-SAT ≤p complement-finding on succinct views
package reductions

import (
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/succinct"
	"github.com/constcomp/constcomp/internal/value"
)

// distinctVars validates that every clause mentions distinct variables,
// as the constructions of Theorems 4 and 7 assume.
func distinctVars(g *logic.CNF) error {
	for j, c := range g.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if seen[l.Var()] {
				return fmt.Errorf("reductions: clause %d repeats variable x%d", j+1, l.Var())
			}
			seen[l.Var()] = true
		}
	}
	return nil
}

// litAttr names the attribute of literal l: X<i> for x_i, X<i>p for ¬x_i.
func litAttr(l logic.Lit) string {
	if l.Pos() {
		return fmt.Sprintf("X%d", l.Var())
	}
	return fmt.Sprintf("X%dp", l.Var())
}

// Theorem2 is the instance S_φ = (U, Σ) of the minimum-complement
// reduction: U = F₁…F_m X₁X₁'…X_nX_n' A, with the FDs
// F₁…F_m X_i → X_i', F₁…F_m X_i' → X_i and L_{j,i} → F_j, and the view
// X = U − A. A complement of size n+1 exists iff φ is satisfiable, and
// any such complement reads off a satisfying assignment.
type Theorem2 struct {
	Schema *core.Schema
	X      attr.Set
	// K is the target complement size, 1 + n.
	K   int
	Phi *logic.CNF
}

// BuildTheorem2 constructs S_φ from a 3-CNF formula.
func BuildTheorem2(phi *logic.CNF) (*Theorem2, error) {
	if !phi.Is3CNF() {
		return nil, fmt.Errorf("reductions: formula is not 3-CNF")
	}
	n, m := phi.Vars, len(phi.Clauses)
	names := make([]string, 0, m+2*n+1)
	for j := 1; j <= m; j++ {
		names = append(names, fmt.Sprintf("F%d", j))
	}
	for i := 1; i <= n; i++ {
		names = append(names, fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i))
	}
	names = append(names, "A")
	u, err := attr.NewUniverse(names...)
	if err != nil {
		return nil, err
	}
	fs := u.Empty()
	for j := 1; j <= m; j++ {
		id, _ := u.Lookup(fmt.Sprintf("F%d", j))
		fs = fs.With(id)
	}
	sigma := dep.NewSet(u)
	for i := 1; i <= n; i++ {
		xi := u.MustSet(fmt.Sprintf("X%d", i))
		xip := u.MustSet(fmt.Sprintf("X%dp", i))
		sigma.Add(dep.NewFD(fs.Union(xi), xip))
		sigma.Add(dep.NewFD(fs.Union(xip), xi))
	}
	for j, c := range phi.Clauses {
		fj := u.MustSet(fmt.Sprintf("F%d", j+1))
		for _, l := range c {
			sigma.Add(dep.NewFD(u.MustSet(litAttr(l)), fj))
		}
	}
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, err
	}
	aID, _ := u.Lookup("A")
	return &Theorem2{
		Schema: s,
		X:      u.All().Without(aID),
		K:      1 + n,
		Phi:    phi,
	}, nil
}

// ComplementFromAssignment builds the size-(n+1) complement
// Y = L₁…L_n A encoding a satisfying assignment h.
func (t *Theorem2) ComplementFromAssignment(h logic.Assignment) attr.Set {
	u := t.Schema.Universe()
	y := u.MustSet("A")
	for i := 1; i <= t.Phi.Vars; i++ {
		l := logic.Lit(i)
		if !h[i] {
			l = l.Neg()
		}
		id, _ := u.Lookup(litAttr(l))
		y = y.With(id)
	}
	return y
}

// AssignmentFromComplement decodes a size-(n+1) complement back into an
// assignment: h(x_i) is true iff X_i ∈ Y. Reports false if Y does not
// have the literal-selection shape.
func (t *Theorem2) AssignmentFromComplement(y attr.Set) (logic.Assignment, bool) {
	if !y.HasName("A") {
		return nil, false
	}
	h := make(logic.Assignment, t.Phi.Vars+1)
	for i := 1; i <= t.Phi.Vars; i++ {
		pos := y.HasName(fmt.Sprintf("X%d", i))
		neg := y.HasName(fmt.Sprintf("X%dp", i))
		if pos == neg {
			return nil, false
		}
		h[i] = pos
	}
	return h, true
}

// Theorem4 is the Π₂ᵖ-hardness instance: deciding whether the insertion
// of t into the succinctly presented view V is translatable is equivalent
// to ∀x₁…x_k ∃x_{k+1}…x_n G.
type Theorem4 struct {
	Schema *core.Schema
	X, Y   attr.Set
	View   *succinct.View
	T      relation.Tuple
	K      int
	G      *logic.CNF
	Syms   *value.Symbols
}

// BuildTheorem4 constructs the instance from a 3-CNF G and universal
// prefix length k.
func BuildTheorem4(g *logic.CNF, k int) (*Theorem4, error) {
	if !g.Is3CNF() {
		return nil, fmt.Errorf("reductions: formula is not 3-CNF")
	}
	if k < 0 || k > g.Vars {
		return nil, fmt.Errorf("reductions: universal prefix %d out of range", k)
	}
	if err := distinctVars(g); err != nil {
		return nil, err
	}
	n, m := g.Vars, len(g.Clauses)
	names := []string{"B"}
	for i := 1; i <= n; i++ {
		names = append(names, fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i))
	}
	names = append(names, "A")
	for j := 1; j <= m; j++ {
		names = append(names, fmt.Sprintf("F%d", j))
	}
	names = append(names, "C")
	u, err := attr.NewUniverse(names...)
	if err != nil {
		return nil, err
	}
	// Σ: X₁X₁'…X_kX_k' → A; F₁…F_m → C; BA → C; L_{j,i} A → F_j.
	sigma := dep.NewSet(u)
	prefix := u.Empty()
	for i := 1; i <= k; i++ {
		prefix = prefix.Union(u.MustSet(fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i)))
	}
	aSet := u.MustSet("A")
	if k > 0 {
		sigma.Add(dep.NewFD(prefix, aSet))
	} else {
		// ∅ → A: A is constant across the database; same role.
		sigma.Add(dep.NewFD(u.Empty(), aSet))
	}
	fs := u.Empty()
	for j := 1; j <= m; j++ {
		id, _ := u.Lookup(fmt.Sprintf("F%d", j))
		fs = fs.With(id)
	}
	sigma.Add(dep.NewFD(fs, u.MustSet("C")))
	sigma.Add(dep.NewFD(u.MustSet("B", "A"), u.MustSet("C")))
	for j, c := range g.Clauses {
		fj := u.MustSet(fmt.Sprintf("F%d", j+1))
		for _, l := range c {
			sigma.Add(dep.NewFD(u.MustSet(litAttr(l)).Union(aSet), fj))
		}
	}
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, err
	}
	// View and complement.
	pairs := u.Empty()
	for i := 1; i <= n; i++ {
		pairs = pairs.Union(u.MustSet(fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i)))
	}
	x := pairs.With(mustID(u, "B"))
	y := u.All().Without(mustID(u, "B"))

	syms := value.NewSymbols()
	zero, one := syms.Const("0"), syms.Const("1")
	a, b := syms.Const("a"), syms.Const("b")
	// V = s_B × S_{X1X1'} × … × S_{XnXn'} ∪ {s}: tuple s has s[B] = a and
	// all literal columns 1.
	sRow := make(relation.Tuple, 1+2*n)
	sRow[0] = a
	for i := 1; i <= 2*n; i++ {
		sRow[i] = one
	}
	view := consistentPairsView(x, n, zero, one, b, sRow)
	// t agrees with s on the literal columns but has t[B] = b.
	tRow := sRow.Clone()
	tRow[0] = b
	return &Theorem4{Schema: s, X: x, Y: y, View: view, T: tRow, K: k, G: g, Syms: syms}, nil
}

// consistentPairsView builds s_B × S_{X1X1'} × … × S_{XnXn'} ∪ {s}, where
// each S_{XiXi'} is the two-row relation {(0,1), (1,0)} of the paper's
// constructions — realized as a FilteredProduct with the disequality
// X_i ≠ X_i' per pair. Column 0 of the view is B; s is passed as a full
// row (its own one-tuple product).
func consistentPairsView(x attr.Set, n int, zero, one, b value.Value, sRow relation.Tuple) *succinct.View {
	lists := make([][]value.Value, 1+2*n)
	lists[0] = []value.Value{b}
	pairCols := make([][2]int, n)
	for i := 0; i < n; i++ {
		lists[1+2*i] = []value.Value{zero, one}
		lists[2+2*i] = []value.Value{zero, one}
		pairCols[i] = [2]int{1 + 2*i, 2 + 2*i}
	}
	assignments := succinct.MustFilteredProduct(x, lists, pairCols)
	sLists := make([][]value.Value, 1+2*n)
	for i, v := range sRow {
		sLists[i] = []value.Value{v}
	}
	return succinct.MustView(assignments, succinct.MustProduct(x, sLists))
}

func mustID(u *attr.Universe, name string) attr.ID {
	id, ok := u.Lookup(name)
	if !ok {
		panic(name)
	}
	return id
}

// ChasePredicts computes the condition that the exact chase test actually
// decides on the Theorem 4 instance under standard chase semantics:
//
//	for every assignment p to the universal prefix x₁…x_k, every clause
//	of G is satisfied by SOME completion of p (equivalently: no clause
//	has all its variables in the prefix with all literals false under p).
//
// REPRODUCTION FINDING. This is weaker than the paper's claimed
// equivalence "translatable iff ∀x₁…x_k ∃x_{k+1}…x_n G": within a prefix
// group all rows share A (via X₁X₁'…X_kX_k' → A), so the clause FDs
// L_{j,i} A → F_j also fire between rows sharing a FALSE literal value,
// chaining every row's F_j to s's F_j whenever some completion satisfies
// clause j — different clauses may be witnessed by different completions,
// so the single-assignment conjunction in the paper's converse argument
// is lost. (The paper's own Theorem 7 proof uses exactly this
// connectivity phenomenon.) The predicate below is what the chase
// decides, verified empirically by TestQuickTheorem4Equivalence; the
// divergence from ∀∃ is exhibited by TestTheorem4DeviationFromPaper.
// Requires clauses with three distinct variables (the connectivity
// argument needs a second shared literal column), which BuildTheorem4
// enforces for clauses of width ≥ 2.
func (t *Theorem4) ChasePredicts() bool {
	k := t.K
	fixed := make(map[int]bool, k)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v > k {
			return t.prefixGroupLinksC(fixed)
		}
		fixed[v] = false
		if !rec(v + 1) {
			return false
		}
		fixed[v] = true
		return rec(v + 1)
	}
	return rec(1)
}

// prefixGroupLinksC decides, for one prefix assignment, whether the chase
// equates r[C] with s[C] for the rows r of that prefix group. Per clause
// j the F_j-equivalence graph within the group behaves as follows
// (columns of prefix variables are constant across the group):
//
//   - clause mentions a prefix variable: the group is a clique through
//     that constant column, so F_j links to s iff some group row
//     satisfies the clause — true iff the prefix satisfies one of its
//     prefix literals or the clause has an existential literal;
//   - clause has ≥2 literals, all existential: the group is connected by
//     single-variable flips sharing the other clause column, and some
//     completion satisfies the clause, so F_j always links;
//   - unit clause on an existential variable: only rows satisfying the
//     literal share s's column value, so the witness row h itself must
//     satisfy it.
//
// The chase then forces r[C] = s[C] iff a single completion h satisfies
// every unit-existential constraint and no clause is dead.
func (t *Theorem4) prefixGroupLinksC(prefix map[int]bool) bool {
	k := t.K
	// unit[v] tracks required polarity for existential unit clauses:
	// 0 unseen, +1 positive, -1 negative, contradiction → fail.
	unit := make(map[int]int)
	for _, c := range t.G.Clauses {
		hasPrefixVar := false
		prefixSat := false
		existentialLits := 0
		for _, l := range c {
			if l.Var() <= k {
				hasPrefixVar = true
				if prefix[l.Var()] == l.Pos() {
					prefixSat = true
				}
			} else {
				existentialLits++
			}
		}
		switch {
		case prefixSat:
			// Satisfied through a constant prefix column: clique + link.
		case hasPrefixVar && existentialLits > 0:
			// Clique through the prefix column; an existential completion
			// satisfies the clause.
		case hasPrefixVar:
			// All literals on prefix variables, all false: dead clause.
			return false
		case len(c) >= 2:
			// Existential-only, multi-literal: connected and satisfiable.
		default:
			// Unit existential clause: the witness must satisfy it.
			l := c[0]
			want := -1
			if l.Pos() {
				want = 1
			}
			if prev, ok := unit[l.Var()]; ok && prev != want {
				return false
			}
			unit[l.Var()] = want
		}
	}
	return true
}

// Theorem5 is the co-NP-hardness instance for Test 1: Test 1 accepts the
// insertion of t into the succinct view iff G is unsatisfiable.
type Theorem5 struct {
	Schema *core.Schema
	X, Y   attr.Set
	View   *succinct.View
	T      relation.Tuple
	G      *logic.CNF
	Syms   *value.Symbols
}

// BuildTheorem5 constructs the instance from a 3-CNF G.
func BuildTheorem5(g *logic.CNF) (*Theorem5, error) {
	if !g.Is3CNF() {
		return nil, fmt.Errorf("reductions: formula is not 3-CNF")
	}
	n := g.Vars
	names := []string{"B"}
	for i := 1; i <= n; i++ {
		names = append(names, fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i))
	}
	names = append(names, "C")
	u, err := attr.NewUniverse(names...)
	if err != nil {
		return nil, err
	}
	sigma := dep.NewSet(u)
	sigma.Add(dep.NewFD(u.MustSet("B"), u.MustSet("C")))
	for _, c := range g.Clauses {
		lhs := u.Empty()
		for _, l := range c {
			lhs = lhs.Union(u.MustSet(litAttr(l)))
		}
		sigma.Add(dep.NewFD(lhs, u.MustSet("C")))
	}
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, err
	}
	pairs := u.Empty()
	for i := 1; i <= n; i++ {
		pairs = pairs.Union(u.MustSet(fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i)))
	}
	x := pairs.With(mustID(u, "B"))
	y := u.All().Without(mustID(u, "B"))
	syms := value.NewSymbols()
	zero, one := syms.Const("0"), syms.Const("1")
	a, b := syms.Const("a"), syms.Const("b")
	_ = one
	sRow := make(relation.Tuple, 1+2*n)
	sRow[0] = a
	for i := 1; i <= 2*n; i++ {
		sRow[i] = zero
	}
	view := consistentPairsView(x, n, zero, one, b, sRow)
	tRow := sRow.Clone()
	tRow[0] = b
	return &Theorem5{Schema: s, X: x, Y: y, View: view, T: tRow, G: g, Syms: syms}, nil
}

// Theorem7 is the NP-hardness instance for complement finding: some
// complement Y = W ∪ F₁…F_m renders the insertion of t translatable iff
// G is satisfiable.
type Theorem7 struct {
	Schema *core.Schema
	X      attr.Set
	View   *succinct.View
	T      relation.Tuple
	G      *logic.CNF
	Syms   *value.Symbols
}

// BuildTheorem7 constructs the instance from a 3-CNF G whose clauses have
// three distinct variables.
func BuildTheorem7(g *logic.CNF) (*Theorem7, error) {
	if !g.Is3CNF() {
		return nil, fmt.Errorf("reductions: formula is not 3-CNF")
	}
	n, m := g.Vars, len(g.Clauses)
	var names []string
	for i := 1; i <= n; i++ {
		names = append(names, fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i))
	}
	for j := 1; j <= m; j++ {
		names = append(names, fmt.Sprintf("F%d", j))
	}
	u, err := attr.NewUniverse(names...)
	if err != nil {
		return nil, err
	}
	sigma := dep.NewSet(u)
	for j, c := range g.Clauses {
		fj := u.MustSet(fmt.Sprintf("F%d", j+1))
		for _, l := range c {
			sigma.Add(dep.NewFD(u.MustSet(litAttr(l)), fj))
		}
	}
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, err
	}
	x := u.Empty()
	for i := 1; i <= n; i++ {
		x = x.Union(u.MustSet(fmt.Sprintf("X%d", i), fmt.Sprintf("X%dp", i)))
	}
	syms := value.NewSymbols()
	zero, one := syms.Const("0"), syms.Const("1")
	lists := make([][]value.Value, 2*n)
	pairCols := make([][2]int, n)
	for i := 0; i < n; i++ {
		lists[2*i] = []value.Value{zero, one}
		lists[2*i+1] = []value.Value{zero, one}
		pairCols[i] = [2]int{2 * i, 2*i + 1}
	}
	view := succinct.MustView(succinct.MustFilteredProduct(x, lists, pairCols))
	tRow := make(relation.Tuple, 2*n)
	for i := range tRow {
		tRow[i] = one
	}
	return &Theorem7{Schema: s, X: x, View: view, T: tRow, G: g, Syms: syms}, nil
}
