// Package constcomp is a Go reproduction of Cosmadakis & Papadimitriou,
// "Updates of Relational Views" (PODS 1983; JACM 31(4), 1984): translating
// updates of projective views of universal-relation schemas under the
// constant-complement semantics of Bancilhon & Spyratos.
//
// The implementation lives under internal/:
//
//	internal/core       the paper's algorithms (complements, Theorems 1–10)
//	internal/chase      tableau and instance chases
//	internal/closure    FD reasoning
//	internal/relation   the relational engine
//	internal/dep        dependency classes (FD, MVD, JD, EFD)
//	internal/logic      DPLL SAT and ∀∃-QBF (reduction oracles)
//	internal/succinct   union-of-Cartesian-products views
//	internal/reductions the hardness constructions of Theorems 2, 4, 5, 7
//	internal/bs         the abstract Bancilhon–Spyratos framework
//	internal/workload   schema/instance generators
//
// # Parallelism
//
// The relational kernels are serial by default. relation.Parallelism(n)
// switches the joins, Project, SelectEq and the FD-satisfaction scan to
// n worker goroutines (n <= 0 selects GOMAXPROCS); inputs smaller than
// 4096 tuples always take the serial path, where goroutine fan-out costs
// more than it saves. Parallel results are deterministic — tuple-for-
// tuple identical to the serial output for any worker count — so the
// knob never changes answers, only wall-clock time. cmd/experiments
// exposes it as -parallel; the complexity experiments are meaningful
// only at the default -parallel=1.
//
// See README.md for a tour, DESIGN.md for the system inventory, the
// kernel architecture and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// every experiment's micro-measurements (make bench records them in
// BENCH.json); cmd/experiments prints the full tables.
package constcomp
