package constcomp

// Serial-equivalence tests for the delta-driven incremental path
// (internal/core/incremental.go): randomized mixed op streams are run
// through a session with incremental maintenance on and one with it
// off, asserting identical decide outcomes (verdict, reason, witness)
// and identical final instances — including after forced invalidations
// mid-stream and after a serving-pipeline divergence/resync.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// incOutcome is the externally observable fate of one op.
type incOutcome struct {
	applied      bool
	translatable bool
	reason       string
	witnessFD    string
	witnessRow   string
	errText      string
}

func incOutcomeOf(d *core.Decision, err error) incOutcome {
	var o incOutcome
	switch {
	case err == nil:
		o.applied = true
	case errors.Is(err, core.ErrRejected):
		o.errText = "rejected"
	default:
		o.errText = err.Error()
	}
	if d != nil {
		o.translatable = d.Translatable
		o.reason = d.Reason.String()
		o.witnessFD = d.WitnessFD.String()
		if d.WitnessRow != nil {
			o.witnessRow = fmt.Sprint([]value.Value(d.WitnessRow))
		}
	}
	return o
}

// runEquivalence drives the same op stream through an incremental and a
// full-path session over identical initial state, comparing every
// outcome and the final instances. invalidateAt ops additionally force
// InvalidateDeltas (and one SetIncremental off/on round-trip) on the
// incremental session first, proving a rebuilt state picks up exactly
// where the dropped one left off.
func runEquivalence(t *testing.T, pair *core.Pair, db *relation.Relation, ops []core.UpdateOp, invalidateAt map[int]bool) {
	t.Helper()
	inc, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	full.SetIncremental(false)
	for i, op := range ops {
		if invalidateAt[i] {
			inc.InvalidateDeltas()
			if i%2 == 0 {
				// Round-trip the switch too: must behave identically.
				inc.SetIncremental(false)
				inc.SetIncremental(true)
			}
		}
		di, erri := inc.Apply(op)
		df, errf := full.Apply(op)
		oi, of := incOutcomeOf(di, erri), incOutcomeOf(df, errf)
		if oi != of {
			t.Fatalf("op %d (%v): incremental %+v, full %+v", i, op.Kind, oi, of)
		}
		// ChaseCalls is the one intentionally path-dependent field;
		// everything else of the Decision must agree (checked above via
		// reason/witness/verdict).
	}
	if !inc.Database().Equal(full.Database()) {
		t.Fatal("final databases diverged")
	}
	if !inc.View().Equal(full.View()) {
		t.Fatal("final views diverged")
	}
	if inc.ViewVersion() != full.ViewVersion() {
		t.Fatalf("versions diverged: inc %d, full %d", inc.ViewVersion(), full.ViewVersion())
	}
}

// TestIncrementalEquivalenceEDM: 1200 mixed ops on the paper's §2
// Employee–Department–Manager schema, with forced invalidations.
func TestIncrementalEquivalenceEDM(t *testing.T) {
	reg := obs.NewRegistry()
	core.SetMetrics(reg)
	defer core.SetMetrics(nil)

	e := workload.NewEDM()
	pair := core.MustPair(e.Schema, e.ED, e.DM)
	db := e.Instance(64, 8)
	rng := rand.New(rand.NewSource(42))
	const nOps = 1200
	ops := make([]core.UpdateOp, 0, nOps)
	emp := func() string { return fmt.Sprintf("w%03d", rng.Intn(80)) }
	dep := func(n int) int { return rng.Intn(n) }
	for len(ops) < nOps {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops = append(ops, core.Insert(e.NewEmployeeTuple(emp(), dep(8))))
		case 4, 5, 6:
			ops = append(ops, core.Delete(e.NewEmployeeTuple(emp(), dep(8))))
		case 7:
			ops = append(ops, core.Replace(
				e.NewEmployeeTuple(emp(), dep(8)), e.NewEmployeeTuple(emp(), dep(8))))
		case 8:
			// Department that does not exist: condition (a) rejection.
			ops = append(ops, core.Insert(e.NewEmployeeTuple(emp(), 8+dep(3))))
		default:
			// Same employee, other department: trips E→D on candidates.
			w := emp()
			ops = append(ops, core.Insert(e.NewEmployeeTuple(w, dep(4))),
				core.Insert(e.NewEmployeeTuple(w, 4+dep(4))))
		}
	}
	ops = ops[:nOps]
	invalidate := map[int]bool{100: true, 500: true, 501: true, 900: true}
	runEquivalence(t, pair, db, ops, invalidate)

	snap := reg.Snapshot()
	if snap.Counters["core_inc_decide_total"] == 0 || snap.Counters["core_inc_apply_total"] == 0 {
		t.Errorf("incremental path never engaged: %v decides, %v applies",
			snap.Counters["core_inc_decide_total"], snap.Counters["core_inc_apply_total"])
	}
	if snap.Counters["core_inc_rebuild_total"] < 2 {
		t.Errorf("forced invalidations did not trigger rebuilds (got %v)",
			snap.Counters["core_inc_rebuild_total"])
	}
}

// TestIncrementalEquivalenceChainSchema: a 4-attribute FD chain
// A→B→C→D with view ABC under complement CD. The B→C and A→B
// candidate loops are chase-heavy (Z ⊄ X∩Y), C→D is skippable —
// together they cover every branch of the incremental candidate loop
// on dense random ops over small domains.
func TestIncrementalEquivalenceChainSchema(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	sigma := dep.MustParseSet(u, "A -> B\nB -> C\nC -> D")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("A", "B", "C"), u.MustSet("C", "D"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 48; i++ {
		b := i % 12
		c := b % 5
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("a%d", i)),
			syms.Const(fmt.Sprintf("b%d", b)),
			syms.Const(fmt.Sprintf("c%d", c)),
			syms.Const(fmt.Sprintf("d%d", c)),
		})
	}
	rng := rand.New(rand.NewSource(7))
	vt := func() relation.Tuple {
		return relation.Tuple{
			syms.Const(fmt.Sprintf("a%d", rng.Intn(64))),
			syms.Const(fmt.Sprintf("b%d", rng.Intn(14))),
			syms.Const(fmt.Sprintf("c%d", rng.Intn(6))),
		}
	}
	const nOps = 1000
	ops := make([]core.UpdateOp, nOps)
	for i := range ops {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			ops[i] = core.Insert(vt())
		case 5, 6, 7:
			ops[i] = core.Delete(vt())
		default:
			ops[i] = core.Replace(vt(), vt())
		}
	}
	runEquivalence(t, pair, db, ops, map[int]bool{250: true, 750: true})
}

// TestIncrementalEquivalencePipelineResync: the serving pipeline runs
// with incremental maintenance on; a write behind its back forces a
// speculation divergence, whose recovery path must invalidate the
// maintained delta state along with the decision seeds. The pipeline's
// post-resync answers must match a full-path serial session replaying
// the identical stream.
func TestIncrementalEquivalencePipelineResync(t *testing.T) {
	e := workload.NewEDM()
	pair := core.MustPair(e.Schema, e.ED, e.DM)
	db := e.Instance(16, 4)

	st, err := store.Create(store.NewMemFS(), pair, db, e.Syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IncrementalEnabled() {
		t.Fatal("store session should default to incremental maintenance")
	}
	pipe, err := serve.New(st, serve.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}

	full, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	full.SetIncremental(false)

	apply := func(op core.UpdateOp) {
		t.Helper()
		dp, errp := pipe.Apply(op)
		df, errf := full.Apply(op)
		if op, fp := incOutcomeOf(dp, errp), incOutcomeOf(df, errf); op != fp {
			t.Fatalf("pipeline %+v, full %+v", op, fp)
		}
	}

	for i := 0; i < 12; i++ {
		apply(core.Insert(e.NewEmployeeTuple(fmt.Sprintf("pre%d", i), i%4)))
	}
	// Behind the pipeline's back: the scratch session still sees emp0,
	// so the next insert's speculation diverges from the authoritative
	// outcome and the committer must resync (dropping decision seeds
	// AND maintained deltas).
	behind := core.Delete(e.NewEmployeeTuple("emp0", 0))
	if _, err := st.Apply(behind); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Apply(behind); err != nil {
		t.Fatal(err)
	}
	apply(core.Insert(e.NewEmployeeTuple("emp0", 1)))
	// Mixed stream after the resync: per-op and final-state equality
	// prove the rebuilt incremental state is consistent.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w := fmt.Sprintf("post%d", rng.Intn(32))
		switch rng.Intn(3) {
		case 0:
			apply(core.Insert(e.NewEmployeeTuple(w, rng.Intn(4))))
		case 1:
			apply(core.Delete(e.NewEmployeeTuple(w, rng.Intn(4))))
		default:
			apply(core.Replace(e.NewEmployeeTuple(w, rng.Intn(4)), e.NewEmployeeTuple(w, rng.Intn(4))))
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if !st.Database().Equal(full.Database()) {
		t.Fatal("pipeline and full-path databases diverged after resync")
	}
}
