package constcomp

// End-to-end integration tests spanning the whole stack: workload
// generation → manager-recommended complements → long update sessions →
// invariant verification, plus a full Theorem 1 ↔ Theorem 3 consistency
// sweep. These complement the per-package unit and property tests.

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/workload"
)

// TestIntegrationLongSession drives a few hundred mixed updates against a
// mid-sized EDM database and verifies after every step that the session
// maintained legality and complement constancy (the Session checks them
// internally and errors otherwise), then replays the accepted log on a
// fresh session and checks it reaches the same state (determinism +
// morphism).
func TestIntegrationLongSession(t *testing.T) {
	e := workload.NewEDM()
	mgr := core.NewManager(e.Schema)
	pair, err := mgr.RegisterRecommended(e.ED)
	if err != nil {
		t.Fatal(err)
	}
	db := e.Instance(200, 10)
	sess, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	names := make([]string, 40)
	for i := range names {
		names[i] = "w" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	applied := 0
	for i := 0; i < 300; i++ {
		name := names[rng.Intn(len(names))]
		dept := rng.Intn(10)
		var op core.UpdateOp
		switch rng.Intn(3) {
		case 0:
			op = core.Insert(e.NewEmployeeTuple(name, dept))
		case 1:
			op = core.Delete(e.NewEmployeeTuple(name, dept))
		default:
			op = core.Replace(e.NewEmployeeTuple(name, dept), e.NewEmployeeTuple(name, (dept+1)%10))
		}
		_, err := sess.Apply(op)
		switch {
		case err == nil:
			applied++
		case errors.Is(err, core.ErrRejected):
			// fine: untranslatable (e.g. replace of a missing tuple is an
			// error, not a rejection — both tolerated below)
		default:
			// Replacement preconditions (t1 missing / t2 present) surface
			// as plain errors; anything else is a real failure.
			if op.Kind != core.UpdateReplace {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if applied < 50 {
		t.Fatalf("only %d/300 updates applied; workload too degenerate", applied)
	}
	// Replay the accepted operations on a fresh session.
	replay, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, entry := range sess.Log() {
		if !entry.Applied {
			continue
		}
		if _, err := replay.Apply(entry.Op); err != nil {
			t.Fatalf("replay rejected an accepted op: %v", err)
		}
	}
	if !replay.Database().Equal(sess.Database()) {
		t.Fatal("replay diverged from the original session")
	}
	// Final invariants, re-checked externally.
	final := sess.Database()
	if ok, bad := e.Schema.Legal(final); !ok {
		t.Fatalf("final database violates %v", bad)
	}
	if !final.Project(e.DM).Equal(db.Project(e.DM)) {
		t.Fatal("complement drifted across the session")
	}
}

// TestIntegrationComplementsAndTranslation sweeps every (X, Y) pair over a
// small schema: whenever NewPair accepts the pair, the three decision
// procedures must run without error on a generated instance and agree
// with each other per their contracts (Test 1 accept ⇒ exact accept; good
// Test 2 ≡ exact).
func TestIntegrationComplementsAndTranslation(t *testing.T) {
	e := workload.NewEDM()
	u := e.Schema.Universe()
	db := e.Instance(24, 4)
	tup := e.NewEmployeeTuple("probe", 1)
	pairs := 0
	u.All().Subsets(func(x attr.Set) bool {
		u.All().Subsets(func(y attr.Set) bool {
			pair, err := core.NewPair(e.Schema, x, y)
			if err != nil {
				return true
			}
			if !x.Equal(e.ED) {
				return true // the probe tuple is over ED
			}
			pairs++
			v := db.Project(x)
			d, err := pair.DecideInsert(v, tup)
			if err != nil {
				t.Fatalf("exact on (%v,%v): %v", x, y, err)
			}
			d1, err := pair.DecideInsertTest1(v, tup)
			if err != nil {
				t.Fatalf("test1 on (%v,%v): %v", x, y, err)
			}
			if d1.Translatable && !d.Translatable {
				t.Fatalf("Test 1 unsound on (%v,%v)", x, y)
			}
			good, err := pair.IsGoodComplement()
			if err != nil {
				t.Fatal(err)
			}
			d2, err := pair.DecideInsertTest2Known(v, tup, good)
			if err != nil {
				t.Fatal(err)
			}
			if good && d2.Translatable != d.Translatable {
				t.Fatalf("Test 2 ≠ exact on good complement (%v,%v)", x, y)
			}
			if d.Translatable {
				if _, err := pair.ApplyInsert(db, tup); err != nil {
					t.Fatalf("translatable but ApplyInsert failed on (%v,%v): %v", x, y, err)
				}
			}
			return true
		})
		return true
	})
	if pairs < 2 {
		t.Fatalf("swept only %d complementary pairs", pairs)
	}
}
