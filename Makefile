# constcomp — build/test/experiment targets.

GO ?= go

.PHONY: all check build vet test race lint cover cover-check bench bench-compare chaos-smoke shard-smoke serve-smoke loadgen examples experiments fuzz fuzz-smoke clean

all: build vet test

# Tier-1 gate: everything CI requires green (see README).
check: build vet lint test race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# constvet: the repository's own invariant suite (durability ordering,
# determinism, budget discipline, lock/deadline/error dataflow over the
# whole-repo call graph). Exceptions are annotated in-diff with
# //constvet:allow; see DESIGN.md. The build step first warms the shared
# build cache so constvet's `go list -export` load reuses compiled
# export data instead of recompiling every package. LINTFLAGS passes
# driver flags through, e.g. `make lint LINTFLAGS='-json'` or
# `make lint LINTFLAGS='-run lockhold,deadlineflow -v'`.
LINTFLAGS ?=
lint:
	$(GO) build ./...
	$(GO) run ./cmd/constvet $(LINTFLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage floors, set about one point under the figure measured when
# each gate was introduced to absorb run-to-run noise: internal/obs
# 93.3% -> 92.0, internal/store 80.2% -> 79.0, internal/analysis
# 87.2% -> 86.0, internal/delta 95.9% -> 94.0.
cover-check:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | tee /dev/stderr | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN { print (p+0 >= f+0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover-check: $$1 coverage $$pct% below floor $$2%"; exit 1; fi; \
	}; \
	check ./internal/obs 92.0; \
	check ./internal/store 79.0; \
	check ./internal/analysis 86.0; \
	check ./internal/delta 94.0; \
	echo "cover-check: floors held"

# Run the kernel/experiment benchmarks and record them as JSON. BENCH.json
# is the single committed baseline (it replaced the old BENCH_relation.json
# / BENCH_new.json split).
bench:
	$(GO) test -bench=. -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH.json

# Regression gate: re-run the kernel, pipeline, per-delta, end-to-end
# serving, and sharded benchmarks and fail if any BenchmarkRel*,
# BenchmarkPipeline*, BenchmarkE5InsertDelta*, BenchmarkApplyDeltaVsFull*,
# BenchmarkNetServe*, or BenchmarkSharded* grew >30% ns/op against the
# committed baseline. -count=3 runs each benchmark three times and the
# comparison keeps the fastest, de-noising shared-machine scheduling and
# GC hiccups. The fresh run lands in BENCH.fresh.json (gitignored; CI
# uploads it as an artifact). A missing baseline makes the comparison
# advisory-only (exit 0).
bench-compare:
	$(GO) test -bench='^Benchmark(Rel|Pipeline|E5InsertDelta|ApplyDeltaVsFull|NetServe|Sharded)' -benchmem -count=3 . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH.fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH.json -filter '^Benchmark(Rel|Pipeline|E5InsertDelta|ApplyDeltaVsFull|NetServe|Sharded)' BENCH.fresh.json

# Chaos smoke: six canonical per-kind fault schedules plus a fixed-seed
# sweep through the self-healing pipeline (internal/chaos). Exits
# non-zero on any acked-op loss, oracle divergence, or if the sweep
# fails to drive at least one resurrection and one shed. Virtual time
# keeps it to a few seconds wall-clock.
chaos-smoke:
	$(GO) run ./cmd/chaos -seeds 40 -ops 40

# Shard smoke, two halves. First a sharded chaos sweep: per-shard fault
# plans, scripted mid-two-phase power cuts, and whole-machine crash
# recovery through the K-shard multi-store — fails on any acked-op
# loss, orphaned intent, or union-state divergence from the serial
# oracle. Then an end-to-end run: viewsrv -shards 4 with one fsync
# fault injected into shard 0's journal, driven by loadgen with
# -hotshard skew pinning half the traffic to shard 0's key range —
# fails on any lost ack or if the resurrection didn't fire (the fault
# is confined to shard 0; the other shards never degrade).
shard-smoke:
	$(GO) run ./cmd/chaos -shards 3 -seeds 40 -ops 24
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill -TERM $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/viewsrv" ./cmd/viewsrv; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/viewsrv" -journal "$$tmp/journal" -addr 127.0.0.1:0 -portfile "$$tmp/port" \
		-views ed -shards 4 -failsync 5 & pid=$$!; \
	i=0; while [ ! -s "$$tmp/port" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/port" ] || { echo "shard-smoke: viewsrv did not start"; exit 1; }; \
	"$$tmp/loadgen" -addr "$$(cat "$$tmp/port")" -view ed -clients 6 -ops 1200 -batch 8 \
		-shards 4 -hotshard 0.5 -expect-resurrection; \
	kill -TERM $$pid; wait $$pid || true; \
	echo "shard-smoke: ok"

# Serve smoke: boot viewsrv on a throwaway journal with one injected
# fsync fault, then drive a CI-sized multi-tenant zipfian burst of mixed
# ops (inserts, Thm-8 deletes, Thm-9 replacements) through the binary
# submit path with cmd/loadgen. Fails on any lost ack, any 5xx on the
# fair-share path, or if the fault failed to drive a resurrection. The
# client-observed latency report lands in SERVE.report.json (gitignored;
# CI uploads it as an artifact).
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill -TERM $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/viewsrv" ./cmd/viewsrv; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/viewsrv" -journal "$$tmp/journal" -addr 127.0.0.1:0 -portfile "$$tmp/port" \
		-failsync 5 -tenants "good=4,hog=1" & pid=$$!; \
	i=0; while [ ! -s "$$tmp/port" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/port" ] || { echo "serve-smoke: viewsrv did not start"; exit 1; }; \
	"$$tmp/loadgen" -addr "$$(cat "$$tmp/port")" -view ed -clients 6 -ops 1200 -batch 8 \
		-tenants good,hog -report SERVE.report.json -expect-resurrection; \
	kill -TERM $$pid; wait $$pid || true; \
	echo "serve-smoke: ok"

# Interactive-scale load run against a self-hosted server, fault-free:
# prints the per-tenant latency table and verifies the final view.
loadgen:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill -TERM $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/viewsrv" ./cmd/viewsrv; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/viewsrv" -journal "$$tmp/journal" -addr 127.0.0.1:0 -portfile "$$tmp/port" \
		-tenants "good=4,hog=1" & pid=$$!; \
	i=0; while [ ! -s "$$tmp/port" ] && [ $$i -lt 100 ]; do sleep 0.1; i=$$((i+1)); done; \
	[ -s "$$tmp/port" ] || { echo "loadgen: viewsrv did not start"; exit 1; }; \
	"$$tmp/loadgen" -addr "$$(cat "$$tmp/port")" -view ed -clients 8 -ops 8000 -batch 16 \
		-tenants good,hog; \
	kill -TERM $$pid; wait $$pid || true

# Run every example binary (smoke test).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/employee
	$(GO) run ./examples/registrar
	$(GO) run ./examples/succinct
	$(GO) run ./examples/catalog

# Regenerate all experiment tables (EXPERIMENTS.md records a full run).
experiments:
	$(GO) run ./cmd/experiments

# CI-sized sweep.
experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Quick fuzz pass over the dependency parser and the journal record
# decoder: malformed input must never panic. Both targets use
# -run '^$$' so no unit tests are re-run alongside the fuzzing.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=5s -run '^$$' ./internal/dep
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=5s -run '^$$' ./internal/store

fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s -run '^$$' ./internal/dep
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=30s -run '^$$' ./internal/store

clean:
	$(GO) clean ./...
