# constcomp — build/test/experiment targets.

GO ?= go

.PHONY: all check build vet test race lint cover cover-check bench bench-compare chaos-smoke examples experiments fuzz fuzz-smoke clean

all: build vet test

# Tier-1 gate: everything CI requires green (see README).
check: build vet lint test race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# constvet: the repository's own invariant suite (durability ordering,
# determinism, budget discipline, nil-safe instrumentation). Exceptions
# are annotated in-diff with //constvet:allow; see DESIGN.md.
lint:
	$(GO) run ./cmd/constvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Coverage floors, set about one point under the figure measured when
# each gate was introduced to absorb run-to-run noise: internal/obs
# 93.3% -> 92.0, internal/store 80.2% -> 79.0, internal/analysis
# 87.2% -> 86.0, internal/delta 95.9% -> 94.0.
cover-check:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | tee /dev/stderr | grep -o 'coverage: [0-9.]*%' | grep -o '[0-9.]*'); \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN { print (p+0 >= f+0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover-check: $$1 coverage $$pct% below floor $$2%"; exit 1; fi; \
	}; \
	check ./internal/obs 92.0; \
	check ./internal/store 79.0; \
	check ./internal/analysis 86.0; \
	check ./internal/delta 94.0; \
	echo "cover-check: floors held"

# Run the kernel/experiment benchmarks and record them as JSON. BENCH.json
# is the single committed baseline (it replaced the old BENCH_relation.json
# / BENCH_new.json split).
bench:
	$(GO) test -bench=. -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH.json

# Regression gate: re-run the kernel, pipeline, and per-delta benchmarks
# and fail if any BenchmarkRel*, BenchmarkPipeline*, BenchmarkE5InsertDelta*,
# or BenchmarkApplyDeltaVsFull* grew >30% ns/op against the committed
# baseline. -count=3 runs each benchmark three times and the
# comparison keeps the fastest, de-noising shared-machine scheduling and
# GC hiccups. The fresh run lands in BENCH.fresh.json (gitignored; CI
# uploads it as an artifact). A missing baseline makes the comparison
# advisory-only (exit 0).
bench-compare:
	$(GO) test -bench='^Benchmark(Rel|Pipeline|E5InsertDelta|ApplyDeltaVsFull)' -benchmem -count=3 . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH.fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH.json -filter '^Benchmark(Rel|Pipeline|E5InsertDelta|ApplyDeltaVsFull)' BENCH.fresh.json

# Chaos smoke: six canonical per-kind fault schedules plus a fixed-seed
# sweep through the self-healing pipeline (internal/chaos). Exits
# non-zero on any acked-op loss, oracle divergence, or if the sweep
# fails to drive at least one resurrection and one shed. Virtual time
# keeps it to a few seconds wall-clock.
chaos-smoke:
	$(GO) run ./cmd/chaos -seeds 40 -ops 40

# Run every example binary (smoke test).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/employee
	$(GO) run ./examples/registrar
	$(GO) run ./examples/succinct
	$(GO) run ./examples/catalog

# Regenerate all experiment tables (EXPERIMENTS.md records a full run).
experiments:
	$(GO) run ./cmd/experiments

# CI-sized sweep.
experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Quick fuzz pass over the dependency parser and the journal record
# decoder: malformed input must never panic. Both targets use
# -run '^$$' so no unit tests are re-run alongside the fuzzing.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=5s -run '^$$' ./internal/dep
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=5s -run '^$$' ./internal/store

fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s -run '^$$' ./internal/dep
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=30s -run '^$$' ./internal/store

clean:
	$(GO) clean ./...
