# constcomp — build/test/experiment targets.

GO ?= go

.PHONY: all check build vet test race cover bench examples experiments fuzz fuzz-smoke clean

all: build vet test

# Tier-1 gate: everything CI requires green (see README).
check: build vet test race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Run the kernel/experiment benchmarks and record them as JSON.
bench:
	$(GO) test -bench=. -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_relation.json

# Run every example binary (smoke test).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/employee
	$(GO) run ./examples/registrar
	$(GO) run ./examples/succinct
	$(GO) run ./examples/catalog

# Regenerate all experiment tables (EXPERIMENTS.md records a full run).
experiments:
	$(GO) run ./cmd/experiments

# CI-sized sweep.
experiments-quick:
	$(GO) run ./cmd/experiments -quick

# Quick fuzz pass over the journal record decoder: corrupt bytes must
# never panic the recovery path.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=5s -run '^$$' ./internal/store

fuzz:
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=30s -run XXX ./internal/dep
	$(GO) test -fuzz='^FuzzJournal$$' -fuzztime=30s -run XXX ./internal/store

clean:
	$(GO) clean ./...
