// Command benchjson converts `go test -bench` output (read from stdin or
// a file argument) into a JSON array of benchmark records, so benchmark
// runs can be committed and diffed (see the Makefile's bench target,
// which writes BENCH.json).
//
// With -compare it becomes a regression gate instead:
//
//	benchjson -compare baseline.json [-threshold 0.30] [-filter '^BenchmarkRel'] new.json
//
// Both files are JSON arrays as written by the convert mode. Benchmarks
// are matched by name and GOMAXPROCS; repeated runs of one benchmark
// (go test -count=N) collapse to their fastest before comparing, and
// any match whose ns/op grew by more than the threshold fails the run
// (exit 1). A missing baseline is advisory-only: the comparison is
// skipped with exit 0, so the gate can bootstrap on branches that have
// never recorded one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON file; switch to regression-gate mode against the new JSON (file argument or stdin)")
	threshold := flag.Float64("threshold", 0.30, "with -compare: maximum allowed relative ns/op growth")
	filter := flag.String("filter", "", "with -compare: regexp restricting which benchmark names are gated")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, flag.Arg(0), *threshold, *filter, os.Stdout))
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	recs, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parseBench converts `go test -bench` text into records.
func parseBench(in io.Reader) ([]Record, error) {
	recs := []Record{} // non-nil so no-input still marshals as []
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		rec := Record{Name: fields[0], Procs: 1}
		if i := strings.LastIndex(rec.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
				rec.Name, rec.Procs = rec.Name[:i], p
			}
		}
		var err error
		if rec.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if rec.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "B/op":
				rec.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				rec.AllocsPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}

// readRecords loads a JSON record array.
func readRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// runCompare gates newPath against the baseline, returning the exit
// code. newPath "" or "-" reads the new records as JSON from stdin.
func runCompare(basePath, newPath string, threshold float64, filter string, w io.Writer) int {
	base, err := readRecords(basePath)
	if os.IsNotExist(err) {
		fmt.Fprintf(w, "benchjson: baseline %s missing; comparison is advisory-only on the first run\n", basePath)
		return 0
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var cur []Record
	if newPath == "" || newPath == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err == nil {
			err = json.Unmarshal(data, &cur)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			return 1
		}
	} else if cur, err = readRecords(newPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	regressions, err := compareRecords(base, cur, threshold, filter, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold*100)
		return 1
	}
	return 0
}

// bestRuns collapses duplicate (name, procs) records — as produced by
// `go test -count=N` — to the one with the lowest ns/op, preserving
// first-appearance order. Scheduling and GC noise on a loaded machine
// only ever slows a benchmark down, so min-of-N is the stable estimator
// the regression gate compares.
func bestRuns(recs []Record) []Record {
	idx := make(map[string]int, len(recs))
	out := recs[:0:0]
	for _, r := range recs {
		key := fmt.Sprintf("%s-%d", r.Name, r.Procs)
		if i, ok := idx[key]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[key] = len(out)
		out = append(out, r)
	}
	return out
}

// compareRecords prints a delta table and returns how many gated
// benchmarks regressed past the threshold. Benchmarks present on only
// one side are reported but never fail the gate. Repeated runs of the
// same benchmark on either side collapse to their fastest (see
// bestRuns), so the fresh side can be generated with -count=N.
func compareRecords(base, cur []Record, threshold float64, filter string, w io.Writer) (int, error) {
	base, cur = bestRuns(base), bestRuns(cur)
	var re *regexp.Regexp
	if filter != "" {
		var err error
		if re, err = regexp.Compile(filter); err != nil {
			return 0, fmt.Errorf("bad -filter: %w", err)
		}
	}
	old := make(map[string]Record, len(base))
	for _, r := range base {
		old[fmt.Sprintf("%s-%d", r.Name, r.Procs)] = r
	}
	regressions := 0
	seen := make(map[string]bool, len(cur))
	var fresh []string
	for _, r := range cur {
		if re != nil && !re.MatchString(r.Name) {
			continue
		}
		key := fmt.Sprintf("%s-%d", r.Name, r.Procs)
		seen[key] = true
		b, ok := old[key]
		if !ok {
			fmt.Fprintf(w, "%-40s %12.1f ns/op  (new, not gated)\n", r.Name, r.NsPerOp)
			fresh = append(fresh, r.Name)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = r.NsPerOp/b.NsPerOp - 1
		}
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n", r.Name, b.NsPerOp, r.NsPerOp, delta*100, verdict)
	}
	for _, r := range base {
		if re != nil && !re.MatchString(r.Name) {
			continue
		}
		key := fmt.Sprintf("%s-%d", r.Name, r.Procs)
		if !seen[key] {
			fmt.Fprintf(w, "%-40s gone from the new run (not gated)\n", r.Name)
		}
	}
	// Name the benchmarks with no baseline in one summary line: a fresh
	// benchmark silently passing the gate is exactly how an unrecorded
	// baseline goes unnoticed until the first regression it can't catch.
	if len(fresh) > 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) have no baseline (advisory, rerecord BENCH.json to gate them): %s\n",
			len(fresh), strings.Join(fresh, ", "))
	}
	return regressions, nil
}
