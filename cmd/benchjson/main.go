// Command benchjson converts `go test -bench` output (read from stdin or
// a file argument) into a JSON array of benchmark records, so benchmark
// runs can be committed and diffed (see the Makefile's bench target,
// which writes BENCH_relation.json).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	recs := []Record{} // non-nil so no-input still marshals as []
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		rec := Record{Name: fields[0], Procs: 1}
		if i := strings.LastIndex(rec.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
				rec.Name, rec.Procs = rec.Name[:i], p
			}
		}
		var err error
		if rec.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		if rec.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "B/op":
				rec.BytesPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			case "allocs/op":
				rec.AllocsPerOp, _ = strconv.ParseInt(fields[i], 10, 64)
			}
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
