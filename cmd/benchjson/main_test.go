package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	text := `goos: linux
BenchmarkRelJoin100k-8   	     100	  11000000 ns/op	 5000000 B/op	    2000 allocs/op
BenchmarkRelProject   	    5000	    250000 ns/op
not a bench line
`
	recs, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].Name != "BenchmarkRelJoin100k" || recs[0].Procs != 8 || recs[0].NsPerOp != 11000000 || recs[0].AllocsPerOp != 2000 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Name != "BenchmarkRelProject" || recs[1].Procs != 1 {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestCompareRecords(t *testing.T) {
	base := []Record{
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1000},
		{Name: "BenchmarkRelProject", Procs: 1, NsPerOp: 1000},
		{Name: "BenchmarkOther", Procs: 1, NsPerOp: 1000},
		{Name: "BenchmarkRelGone", Procs: 1, NsPerOp: 1000},
	}
	cur := []Record{
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1200},    // +20%: ok
		{Name: "BenchmarkRelProject", Procs: 1, NsPerOp: 1400}, // +40%: regression
		{Name: "BenchmarkOther", Procs: 1, NsPerOp: 9000},      // filtered out
		{Name: "BenchmarkRelNew", Procs: 1, NsPerOp: 5},        // new: not gated
	}
	var out bytes.Buffer
	n, err := compareRecords(base, cur, 0.30, "^BenchmarkRel", &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", n, out.String())
	}
	got := out.String()
	for _, want := range []string{"REGRESSION", "new, not gated", "gone from the new run"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "BenchmarkOther") {
		t.Errorf("filtered benchmark leaked into the gate:\n%s", got)
	}
}

func TestCompareRecordsNamesAdvisoryNewBenchmarks(t *testing.T) {
	base := []Record{{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1000}}
	cur := []Record{
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1000},
		{Name: "BenchmarkRelNewA", Procs: 1, NsPerOp: 5},
		{Name: "BenchmarkRelNewB", Procs: 1, NsPerOp: 7},
	}
	var out bytes.Buffer
	n, err := compareRecords(base, cur, 0.30, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("regressions = %d, want 0 (new benchmarks are advisory):\n%s", n, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "2 benchmark(s) have no baseline") {
		t.Errorf("advisory summary missing or unnumbered:\n%s", got)
	}
	for _, name := range []string{"BenchmarkRelNewA", "BenchmarkRelNewB"} {
		if !strings.Contains(got, name+",") && !strings.HasSuffix(strings.TrimSpace(got), name) && !strings.Contains(got, ", "+name) {
			t.Errorf("advisory summary does not name %s:\n%s", name, got)
		}
	}
}

func TestCompareRecordsKeepsFastestOfRepeatedRuns(t *testing.T) {
	base := []Record{{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1000}}
	// A -count=3 run where one repetition caught a scheduling hiccup:
	// the gate must compare the fastest repetition, not the noisy one.
	cur := []Record{
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1900},
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1050},
		{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1300},
	}
	var out bytes.Buffer
	n, err := compareRecords(base, cur, 0.30, "", &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("regressions = %d, want 0 (min-of-N should pass):\n%s", n, out.String())
	}
	if got := strings.Count(out.String(), "BenchmarkRelJoin"); got != 1 {
		t.Errorf("benchmark printed %d times, want once:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "1050.0") {
		t.Errorf("fastest repetition not the one compared:\n%s", out.String())
	}
}

func TestRunCompareMissingBaselineIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	newPath := filepath.Join(dir, "new.json")
	data, _ := json.Marshal([]Record{{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1}})
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := runCompare(filepath.Join(dir, "absent.json"), newPath, 0.30, "", &out); code != 0 {
		t.Fatalf("missing baseline exit code = %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "advisory") {
		t.Errorf("missing-baseline note absent:\n%s", out.String())
	}
}

func TestRunCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, recs []Record) string {
		p := filepath.Join(dir, name)
		data, _ := json.Marshal(recs)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	basePath := write("base.json", []Record{{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 1000}})
	newPath := write("new.json", []Record{{Name: "BenchmarkRelJoin", Procs: 1, NsPerOp: 2000}})
	var out bytes.Buffer
	if code := runCompare(basePath, newPath, 0.30, "", &out); code != 1 {
		t.Fatalf("regression exit code = %d, want 1:\n%s", code, out.String())
	}
}
