package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/axioms"
	"github.com/constcomp/constcomp/internal/bs"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func init() {
	register("E15", "EFDs: Propositions 1–2 implication, Theorem 10 complementarity", runE15)
	register("E17", "Axiom system (Armstrong + EFD rules): soundness & completeness", runE17)
	register("E16", "Bancilhon–Spyratos facts (i)/(ii) on enumerated relational states", runE16)
	register("A1", "Ablation: hash-bucket vs. sort-based instance chase", runA1)
	register("A2", "Ablation: dependency-basis fast path vs. tableau chase (MVD inference)", runA2)
	register("A4", "Ablation: Beeri dependency-basis vs. tableau chase on FD+MVD schemas", runA4)
	register("A3", "Ablation: hash join vs. sort-merge join for t*π_Y(R)", runA3)
}

func runE15(cfg config) {
	trials := 500
	if cfg.quick {
		trials = 100
	}
	rng := rand.New(rand.NewSource(15))
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	agree := 0
	for i := 0; i < trials; i++ {
		// Random mixed Σ with EFDs and FDs.
		sigma := dep.NewSet(u)
		var efdFDs []dep.FD
		for _, f := range workload.RandomFDs(u, rng, 2+rng.Intn(3)) {
			if rng.Intn(2) == 0 {
				sigma.Add(dep.NewEFD(f.From, f.To))
				efdFDs = append(efdFDs, f)
			} else {
				sigma.Add(f)
			}
		}
		s := core.MustSchema(u, sigma)
		q := workload.RandomFDs(u, rng, 1)[0]
		target := dep.NewEFD(q.From, q.To)
		// Oracle (Prop 1 + Prop 2b): closure over EFD-underlying FDs only.
		want := closure.Implies(efdFDs, q)
		if core.ImpliesEFD(s, target) == want {
			agree++
		}
	}
	fmt.Printf("EFD implication vs Prop 1/2 oracle: %d/%d agree\n", agree, trials)

	// Theorem 10 cases.
	u2 := attr.MustUniverse("Cost", "Rate", "Price")
	efd := core.MustSchema(u2, dep.MustParseSet(u2, "Cost Rate =>e Price"))
	plain := core.MustSchema(u2, dep.MustParseSet(u2, "Cost Rate -> Price"))
	x := u2.MustSet("Cost", "Rate")
	y := u2.MustSet("Cost")
	row("Σ", "X", "Y", "complementary")
	row("EFD", x, y, core.Complementary(efd, x, y))
	row("plain FD", x, y, core.Complementary(plain, x, y))
}

func runE17(cfg config) {
	trials := 2000
	if cfg.quick {
		trials = 300
	}
	rng := rand.New(rand.NewSource(17))
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	agree, proved, verified := 0, 0, 0
	for i := 0; i < trials; i++ {
		sigma := dep.NewSet(u)
		for _, f := range workload.RandomFDs(u, rng, 1+rng.Intn(4)) {
			if rng.Intn(2) == 0 {
				sigma.Add(dep.NewEFD(f.From, f.To))
			} else {
				sigma.Add(f)
			}
		}
		p := axioms.NewProver(sigma)
		goal := workload.RandomFDs(u, rng, 1)[0]
		want := closure.Implies(sigma.WithFD().FDs(), goal)
		proof, ok := p.ProveFD(goal)
		if ok == want {
			agree++
		}
		if ok {
			proved++
			if p.Verify(proof) == nil {
				verified++
			}
		}
	}
	fmt.Printf("derivability vs semantic implication: %d/%d agree\n", agree, trials)
	fmt.Printf("proofs produced: %d, independently verified: %d\n", proved, verified)
}

func runE16(cfg config) {
	// Enumerate legal EDM states over a tiny domain and check the BS
	// facts for the constant-complement translator.
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	syms := value.NewSymbols()
	var vals []value.Value
	for _, n := range []string{"e1", "e2", "d1", "d2", "m1", "m2"} {
		vals = append(vals, syms.Const(n))
	}
	serialize := func(r *relation.Relation) string {
		rows := make([]string, 0, r.Len())
		for _, tp := range r.Tuples() {
			rows = append(rows, fmt.Sprintf("%v", tp))
		}
		sort.Strings(rows)
		return strings.Join(rows, ";")
	}
	byKey := map[string]*relation.Relation{}
	var keys []string
	var tuples []relation.Tuple
	for _, e := range vals[:2] {
		for _, d := range vals[2:4] {
			for _, m := range vals[4:] {
				tuples = append(tuples, relation.Tuple{e, d, m})
			}
		}
	}
	add := func(r *relation.Relation) {
		if ok, _ := s.Legal(r); ok {
			k := serialize(r)
			if _, dup := byKey[k]; !dup {
				byKey[k] = r
				keys = append(keys, k)
			}
		}
	}
	add(relation.New(u.All()))
	for i := range tuples {
		r := relation.New(u.All())
		r.Insert(tuples[i].Clone())
		add(r)
		for j := i + 1; j < len(tuples); j++ {
			r2 := relation.New(u.All())
			r2.Insert(tuples[i].Clone())
			r2.Insert(tuples[j].Clone())
			add(r2)
		}
	}
	sp := bs.NewSpace(keys...)
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	vx := bs.View[string, string](func(k string) string { return serialize(byKey[k].Project(x)) })
	vy := bs.View[string, string](func(k string) string { return serialize(byKey[k].Project(y)) })
	fmt.Printf("states: %d, complementary(π_ED, π_DM): %v\n", sp.Len(), bs.Complementary(sp, vx, vy))
	tr, err := bs.NewTranslator(sp, vx, vy)
	if err != nil {
		panic(err)
	}
	// Extensional view updates: for every pair of reachable view states
	// that differ by one tuple, an insert update.
	uv := map[string]string{}
	tIns := relation.Tuple{vals[0], vals[2]} // (e1, d1)
	for _, k := range keys {
		v := byKey[k].Project(x)
		updated := v.Clone()
		updated.Insert(tIns.Clone())
		uv[serialize(v)] = serialize(updated)
	}
	ins := bs.Update[string](func(vs string) string {
		if out, ok := uv[vs]; ok {
			return out
		}
		return vs
	})
	consistent, acceptable, translatableAt := 0, 0, 0
	for _, k := range keys {
		if out, ok := tr.Translate(ins, k); ok {
			translatableAt++
			if vx(out) == ins(vx(k)) {
				consistent++
			}
			if ins(vx(k)) == vx(k) && out == k {
				acceptable++
			}
		}
	}
	fmt.Printf("fact (i): translatable at %d states; consistent %d, acceptable identities %d\n",
		translatableAt, consistent, acceptable)
	// Fact (ii) is conditional on translatability: check the morphism
	// equation on the states where both sides are defined (insert is
	// idempotent, so u∘u = u there).
	violations, checked := 0, 0
	for _, k := range keys {
		mid, ok1 := tr.Translate(ins, k)
		if !ok1 {
			continue
		}
		two, ok2 := tr.Translate(ins, mid)
		comp := bs.Update[string](func(vs string) string { return ins(ins(vs)) })
		viaComp, ok3 := tr.Translate(comp, k)
		if !ok2 || !ok3 {
			continue
		}
		checked++
		if two != viaComp {
			violations++
		}
	}
	fmt.Printf("fact (ii): morphism equation checked on %d states, violations %d\n", checked, violations)
}

func runA1(cfg config) {
	sizes := chainSweep(cfg)
	c := workload.NewChain(6, 3)
	fds := c.Schema.Sigma().SplitFDs()
	row("|V|", "hash chase", "sort chase", "agree")
	for _, n := range sizes {
		v := c.ViewInstance(n)
		var gen value.NullGen
		padded := relation.New(c.Schema.Universe().All())
		for _, t := range v.Tuples() {
			nt := make(relation.Tuple, c.Schema.Universe().Size())
			for col := 0; col < c.Schema.Universe().Size(); col++ {
				if vc := v.Col(attr.ID(col)); vc >= 0 {
					nt[col] = t[vc]
				} else {
					nt[col] = gen.Fresh()
				}
			}
			padded.Insert(nt)
		}
		var hres, sres *chase.Result
		h := timeIt(3, func() { hres = chase.Instance(padded, fds) })
		sd := timeIt(1, func() { sres = chase.InstanceSortBased(padded, fds) })
		agree := hres.ConstClash() == sres.ConstClash() &&
			hres.Relation().Len() == sres.Relation().Len()
		row(n, h, sd, agree)
	}
}

func runA2(cfg config) {
	trials := 3000
	if cfg.quick {
		trials = 500
	}
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	rng := rand.New(rand.NewSource(22))
	type caseT struct {
		s *dep.Set
		m dep.MVD
	}
	cases := make([]caseT, 0, trials)
	for i := 0; i < trials; i++ {
		sigma := dep.NewSet(u)
		for _, f := range workload.RandomFDs(u, rng, 1+rng.Intn(4)) {
			sigma.Add(f)
		}
		x, y := randomSubset(u, rng), randomSubset(u, rng)
		cases = append(cases, caseT{sigma, dep.NewMVD(x, y)})
	}
	agree := 0
	fast := timeIt(1, func() {
		for _, c := range cases {
			chase.FDOnlyImpliesMVD(c.s.FDs(), c.m)
		}
	})
	slow := timeIt(1, func() {
		for _, c := range cases {
			chase.ImpliesMVD(c.s, c.m)
		}
	})
	for _, c := range cases {
		if chase.FDOnlyImpliesMVD(c.s.FDs(), c.m) == chase.ImpliesMVD(c.s, c.m) {
			agree++
		}
	}
	fmt.Printf("cases: %d, agreement: %d\n", len(cases), agree)
	row("impl", "total time")
	row("dependency basis", fast)
	row("tableau chase", slow)
}

func runA4(cfg config) {
	trials := 3000
	if cfg.quick {
		trials = 500
	}
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	rng := rand.New(rand.NewSource(44))
	type caseT struct {
		s *dep.Set
		m dep.MVD
	}
	cases := make([]caseT, 0, trials)
	for i := 0; i < trials; i++ {
		sigma := dep.NewSet(u)
		for j := 0; j < 1+rng.Intn(4); j++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < u.Size(); a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			if rng.Intn(2) == 0 {
				sigma.Add(dep.NewFD(lhs, rhs))
			} else {
				sigma.Add(dep.NewMVD(lhs, rhs))
			}
		}
		cases = append(cases, caseT{sigma, dep.NewMVD(randomSubset(u, rng), randomSubset(u, rng))})
	}
	agree := 0
	basis := timeIt(1, func() {
		for _, c := range cases {
			chase.BasisImpliesMVD(c.s, c.m)
		}
	})
	tableau := timeIt(1, func() {
		for _, c := range cases {
			chase.ImpliesMVD(c.s, c.m)
		}
	})
	for _, c := range cases {
		if chase.BasisImpliesMVD(c.s, c.m) == chase.ImpliesMVD(c.s, c.m) {
			agree++
		}
	}
	fmt.Printf("FD+MVD cases: %d, agreement: %d\n", len(cases), agree)
	row("impl", "total time")
	row("Beeri basis", basis)
	row("tableau chase", tableau)
}

func runA3(cfg config) {
	e := workload.NewEDM()
	row("|R|", "hash join", "sort-merge", "agree")
	for _, n := range chainSweep(cfg) {
		db := e.Instance(n, max(2, n/16))
		vy := db.Project(e.DM)
		tx := relation.Singleton(e.ED, e.NewEmployeeTuple("probe", 0))
		var hj, sj *relation.Relation
		h := timeIt(5, func() { hj = tx.JoinWith(vy, relation.HashJoin) })
		sm := timeIt(5, func() { sj = tx.JoinWith(vy, relation.SortMergeJoin) })
		row(n, h, sm, hj.Equal(sj))
	}
}
