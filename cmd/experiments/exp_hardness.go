package main

import (
	"fmt"
	"math/rand"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/reductions"
)

func init() {
	register("E9", "Theorem 4: succinct-view translatability — blowup and the reproduction finding", runE9)
	register("E10", "Theorem 5: Test 1 on succinct views is co-NP-complete", runE10)
	register("E12", "Theorem 7: complement finding on succinct views is NP-hard", runE12)
}

func runE9(cfg config) {
	// Equivalence with the chase-characterized predicate, plus the
	// deviation count from the paper's ∀∃ claim.
	trials := 40
	maxN := 5
	if cfg.quick {
		trials, maxN = 15, 4
	}
	rng := rand.New(rand.NewSource(9))
	agreeChase, agreeQBF := 0, 0
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(maxN-2)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(6))
		k := rng.Intn(n + 1)
		red, err := reductions.BuildTheorem4(g, k)
		if err != nil {
			continue
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			continue
		}
		d, err := pair.DecideInsert(red.View.Expand(), red.T)
		if err != nil {
			continue
		}
		if d.Translatable == red.ChasePredicts() {
			agreeChase++
		}
		if d.Translatable == g.ForallExists(k) {
			agreeQBF++
		}
	}
	fmt.Printf("agreement with chase-characterized predicate: %d/%d\n", agreeChase, trials)
	fmt.Printf("agreement with the paper's ∀∃ claim:          %d/%d (deviation — see EXPERIMENTS.md)\n", agreeQBF, trials)

	// Exponential blowup of expansion-based decision vs description size.
	ns := []int{3, 5, 7, 8}
	if cfg.quick {
		ns = []int{3, 5, 7}
	}
	row("n", "descr", "|V|", "decide time")
	for _, n := range ns {
		clauses := make([]logic.Clause, 0, n-2)
		for i := 1; i+2 <= n; i++ {
			clauses = append(clauses, logic.Clause{logic.Lit(i), logic.Lit(-(i + 1)), logic.Lit(i + 2)})
		}
		g := logic.MustCNF(n, clauses...)
		red, err := reductions.BuildTheorem4(g, n/2)
		if err != nil {
			panic(err)
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			panic(err)
		}
		v := red.View.Expand()
		d := timeIt(1, func() {
			if _, err := pair.DecideInsert(v, red.T); err != nil {
				panic(err)
			}
		})
		row(n, red.View.DescriptionSize(), v.Len(), d)
	}
}

func runE10(cfg config) {
	trials := 40
	if cfg.quick {
		trials = 15
	}
	rng := rand.New(rand.NewSource(10))
	agree := 0
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(3)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(8))
		red, err := reductions.BuildTheorem5(g)
		if err != nil {
			continue
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			continue
		}
		d, err := pair.DecideInsertTest1(red.View.Expand(), red.T)
		if err != nil {
			continue
		}
		if d.Translatable == !g.Satisfiable() {
			agree++
		}
	}
	fmt.Printf("Test 1 accepts iff G unsat: %d/%d instances agree with DPLL\n", agree, trials)

	ns := []int{3, 5, 7, 9, 11}
	if cfg.quick {
		ns = []int{3, 5, 7}
	}
	visits := cfg.meter("chase_instance_row_visits_total")
	row("n", "descr", "|V|", "test1 time", "rowvisits")
	for _, n := range ns {
		clauses := make([]logic.Clause, 0, n-2)
		for i := 1; i+2 <= n; i++ {
			clauses = append(clauses, logic.Clause{logic.Lit(-i), logic.Lit(i + 1), logic.Lit(-(i + 2))})
		}
		g := logic.MustCNF(n, clauses...)
		red, err := reductions.BuildTheorem5(g)
		if err != nil {
			panic(err)
		}
		pair, err := core.NewPair(red.Schema, red.X, red.Y)
		if err != nil {
			panic(err)
		}
		v := red.View.Expand()
		d := timeIt(1, func() {
			if _, err := pair.DecideInsertTest1(v, red.T); err != nil {
				panic(err)
			}
		})
		row(n, red.View.DescriptionSize(), v.Len(), d, visits.cell(1))
	}
}

func runE12(cfg config) {
	trials := 30
	if cfg.quick {
		trials = 10
	}
	rng := rand.New(rand.NewSource(12))
	agree := 0
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(2)
		g := logic.Random3CNF(rng, n, 1+rng.Intn(4))
		red, err := reductions.BuildTheorem7(g)
		if err != nil {
			continue
		}
		res, err := core.FindInsertComplement(red.Schema, red.X, red.View.Expand(), red.T, core.TestExact)
		if err != nil {
			continue
		}
		if res.Found == g.Satisfiable() {
			agree++
		}
	}
	fmt.Printf("complement exists iff G sat: %d/%d instances agree with DPLL\n", agree, trials)

	ns := []int{3, 5, 6}
	if cfg.quick {
		ns = []int{3, 5}
	}
	row("n", "descr", "|V|", "find time", "found")
	for _, n := range ns {
		clauses := make([]logic.Clause, 0, n-2)
		for i := 1; i+2 <= n; i++ {
			clauses = append(clauses, logic.Clause{logic.Lit(i), logic.Lit(i + 1), logic.Lit(i + 2)})
		}
		g := logic.MustCNF(n, clauses...)
		red, err := reductions.BuildTheorem7(g)
		if err != nil {
			panic(err)
		}
		v := red.View.Expand()
		var res *core.FindResult
		d := timeIt(1, func() {
			var err error
			res, err = core.FindInsertComplement(red.Schema, red.X, v, red.T, core.TestExact)
			if err != nil {
				panic(err)
			}
		})
		row(n, red.View.DescriptionSize(), v.Len(), d, res.Found)
	}
}
