// Command experiments regenerates every experiment table of the
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for the recorded results): E1–E16 validate the paper's theorems and
// algorithms, A1–A3 are ablations of implementation choices.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run E5,E7   # run selected experiments
//	experiments -quick       # smaller sweeps (CI-sized)
//	experiments -parallel 8  # 8-way parallel relational kernels
//	experiments -trace       # instrument + trace every experiment
//
// -parallel n sets relation.Parallelism: n > 1 switches the joins,
// Project, SelectEq and FD-satisfaction scans to n worker goroutines
// (0 means GOMAXPROCS; inputs under 4096 tuples stay serial). Results
// are identical for any value — the complexity experiments' timings are
// meaningful only at the default -parallel=1.
//
// -trace instruments every subsystem through the obs layer: each
// experiment runs under a span, prints an instrumented-cost summary
// line (chase row visits, DPLL nodes, join probes, budget steps), some
// tables gain an instrumented-cost column, and the run ends with the
// full metrics report and the span tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/store"
)

// experiment is one runnable table.
type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

// config carries global knobs into experiments.
type config struct {
	quick bool
	// reg is non-nil under -trace; tables use it via meter to add
	// instrumented-cost columns.
	reg *obs.Registry
}

var registry []experiment

func register(id, title string, run func(config)) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	runSpec := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	list := flag.Bool("list", false, "list experiment ids and exit")
	par := flag.Int("parallel", 1, "relational kernel workers (0 = GOMAXPROCS; >1 enables parallel kernels)")
	trace := flag.Bool("trace", false, "instrument all subsystems and print per-experiment costs, metrics, and the span tree")
	flag.Parse()
	relation.Parallelism(*par)

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *trace {
		reg = obs.NewRegistry()
		relation.SetMetrics(reg)
		chase.SetMetrics(reg)
		logic.SetMetrics(reg)
		budget.SetMetrics(reg)
		core.SetMetrics(reg)
		store.SetMetrics(reg)
		tracer = obs.NewTracer()
		core.SetTracer(tracer)
	}

	sort.Slice(registry, func(i, j int) bool { return registry[i].id < registry[j].id })
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*runSpec, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	cfg := config{quick: *quick, reg: reg}
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		var before obs.Snapshot
		if reg != nil {
			before = reg.Snapshot()
		}
		sp := tracer.Start(e.id)
		start := obs.NowNS()
		e.run(cfg)
		sp.End()
		if reg != nil {
			fmt.Printf("   cost: %s\n", costSummary(before, reg.Snapshot()))
		}
		fmt.Printf("-- %s done in %v --\n\n", e.id, time.Duration(obs.SinceNS(start)).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -run; use -list")
		os.Exit(2)
	}
	if reg != nil {
		fmt.Println("== metrics ==")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Println("== trace ==")
		if err := tracer.WriteTree(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

// costCounters are the headline counters of the per-experiment
// instrumented-cost summary line.
var costCounters = []struct{ label, name string }{
	{"chase-rows", "chase_instance_row_visits_total"},
	{"tableau-rows", "chase_tableau_row_visits_total"},
	{"dpll-nodes", "logic_dpll_nodes_total"},
	{"join-probes", "relation_join_probe_tuples_total"},
	{"budget-steps", "budget_steps_total"},
}

// costSummary renders the counter deltas one experiment produced.
func costSummary(before, after obs.Snapshot) string {
	var parts []string
	for _, c := range costCounters {
		if d := after.Counters[c.name] - before.Counters[c.name]; d != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.label, d))
		}
	}
	if len(parts) == 0 {
		return "(no instrumented work)"
	}
	return strings.Join(parts, " ")
}

// costMeter reports per-row deltas of one counter, so a table can carry
// an instrumented-cost column next to wall time.
type costMeter struct {
	c    *obs.Counter
	last int64
}

// meter returns a delta meter over the named counter; with -trace off
// its cells read "-".
func (cfg config) meter(name string) *costMeter {
	if cfg.reg == nil {
		return &costMeter{}
	}
	return &costMeter{c: cfg.reg.Counter(name)}
}

// cell returns the counter's growth since the previous cell, averaged
// over reps runs ("-" when instrumentation is off).
func (m *costMeter) cell(reps int64) string {
	if m.c == nil {
		return "-"
	}
	v := m.c.Value()
	d := v - m.last
	m.last = v
	return fmt.Sprintf("%d", d/reps)
}

// timeIt reports the wall time of f averaged over reps runs.
func timeIt(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	start := obs.NowNS()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Duration(obs.SinceNS(start)) / time.Duration(reps)
}

// row prints aligned columns.
func row(cols ...interface{}) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%12v", c)
	}
	fmt.Println(strings.Join(parts, " "))
}
