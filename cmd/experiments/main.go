// Command experiments regenerates every experiment table of the
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md
// for the recorded results): E1–E16 validate the paper's theorems and
// algorithms, A1–A3 are ablations of implementation choices.
//
// Usage:
//
//	experiments              # run everything
//	experiments -run E5,E7   # run selected experiments
//	experiments -quick       # smaller sweeps (CI-sized)
//	experiments -parallel 8  # 8-way parallel relational kernels
//
// -parallel n sets relation.Parallelism: n > 1 switches the joins,
// Project, SelectEq and FD-satisfaction scans to n worker goroutines
// (0 means GOMAXPROCS; inputs under 4096 tuples stay serial). Results
// are identical for any value — the complexity experiments' timings are
// meaningful only at the default -parallel=1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/constcomp/constcomp/internal/relation"
)

// experiment is one runnable table.
type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

// config carries global knobs into experiments.
type config struct {
	quick bool
}

var registry []experiment

func register(id, title string, run func(config)) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

func main() {
	runSpec := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	list := flag.Bool("list", false, "list experiment ids and exit")
	par := flag.Int("parallel", 1, "relational kernel workers (0 = GOMAXPROCS; >1 enables parallel kernels)")
	flag.Parse()
	relation.Parallelism(*par)

	sort.Slice(registry, func(i, j int) bool { return registry[i].id < registry[j].id })
	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*runSpec, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	cfg := config{quick: *quick}
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		start := time.Now()
		e.run(cfg)
		fmt.Printf("-- %s done in %v --\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -run; use -list")
		os.Exit(2)
	}
}

// timeIt reports the wall time of f averaged over reps runs.
func timeIt(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return time.Since(start) / time.Duration(reps)
}

// row prints aligned columns.
func row(cols ...interface{}) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%12v", c)
	}
	fmt.Println(strings.Join(parts, " "))
}
