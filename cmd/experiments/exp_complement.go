package main

import (
	"fmt"
	"math/rand"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/reductions"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func init() {
	register("E1", "Theorem 1: complementarity characterization vs. semantic brute force", runE1)
	register("E2", "Corollary 1: complementarity test scales polynomially", runE2)
	register("E3", "Corollary 2: minimal complement in polynomial time", runE3)
	register("E4", "Theorem 2: minimum complement — reduction validity and exponential search", runE4)
}

// bruteComplementary checks the definition over all ≤2-tuple legal
// instances on a 2-value domain (exact for FD schemas by the paper's
// two-tuple counterexample argument).
func bruteComplementary(s *core.Schema, x, y attr.Set, syms *value.Symbols) bool {
	u := s.Universe()
	n := u.Size()
	vals := syms.Ints(2)
	var tuples []relation.Tuple
	for mask := 0; mask < 1<<uint(n); mask++ {
		t := make(relation.Tuple, n)
		for c := 0; c < n; c++ {
			t[c] = vals[(mask>>uint(c))&1]
		}
		tuples = append(tuples, t)
	}
	var legal []*relation.Relation
	consider := func(r *relation.Relation) {
		if ok, _ := s.Legal(r); ok {
			legal = append(legal, r)
		}
	}
	for i := range tuples {
		r := relation.New(u.All())
		r.Insert(tuples[i].Clone())
		consider(r)
		for j := i + 1; j < len(tuples); j++ {
			r2 := relation.New(u.All())
			r2.Insert(tuples[i].Clone())
			r2.Insert(tuples[j].Clone())
			consider(r2)
		}
	}
	for i, r := range legal {
		for _, r2 := range legal[i+1:] {
			if r.Project(x).Equal(r2.Project(x)) && r.Project(y).Equal(r2.Project(y)) {
				return false
			}
		}
	}
	return true
}

func runE1(cfg config) {
	trials := 400
	if cfg.quick {
		trials = 60
	}
	u := attr.MustUniverse("A", "B", "C", "D")
	rng := rand.New(rand.NewSource(1))
	agree, complementary := 0, 0
	for i := 0; i < trials; i++ {
		sigma := dep.NewSet(u)
		for _, f := range workload.RandomFDs(u, rng, 1+rng.Intn(3)) {
			sigma.Add(f)
		}
		s := core.MustSchema(u, sigma)
		x := randomSubset(u, rng)
		y := randomSubset(u, rng)
		syms := value.NewSymbols()
		chaseVerdict := core.Complementary(s, x, y)
		bruteVerdict := bruteComplementary(s, x, y, syms)
		if chaseVerdict == bruteVerdict {
			agree++
		}
		if chaseVerdict {
			complementary++
		}
	}
	row("trials", "agree", "complementary")
	row(trials, agree, complementary)
	if agree != trials {
		fmt.Println("!! characterization DISAGREES with the semantic definition")
	}
}

func randomSubset(u *attr.Universe, rng *rand.Rand) attr.Set {
	s := u.Empty()
	for a := 0; a < u.Size(); a++ {
		if rng.Intn(2) == 0 {
			s = s.With(attr.ID(a))
		}
	}
	return s
}

func runE2(cfg config) {
	sizes := []int{8, 16, 32, 64, 128}
	if cfg.quick {
		sizes = []int{8, 16, 32}
	}
	row("|U|", "|Σ|", "time/test")
	rng := rand.New(rand.NewSource(2))
	for _, n := range sizes {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("A%03d", i)
		}
		u := attr.MustUniverse(names...)
		sigma := dep.NewSet(u)
		for _, f := range workload.RandomFDs(u, rng, n) {
			sigma.Add(f)
		}
		s := core.MustSchema(u, sigma)
		x := randomSubset(u, rng)
		y := randomSubset(u, rng).Union(x.Complement())
		d := timeIt(50, func() { core.Complementary(s, x, y) })
		row(n, sigma.Len(), d)
	}
}

func runE3(cfg config) {
	sizes := []int{8, 16, 32, 64}
	if cfg.quick {
		sizes = []int{8, 16}
	}
	row("|U|", "time", "|Y|", "minimal?")
	rng := rand.New(rand.NewSource(3))
	for _, n := range sizes {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("A%03d", i)
		}
		u := attr.MustUniverse(names...)
		sigma := dep.NewSet(u)
		for _, f := range workload.RandomFDs(u, rng, n) {
			sigma.Add(f)
		}
		s := core.MustSchema(u, sigma)
		x := randomSubset(u, rng)
		var y attr.Set
		d := timeIt(5, func() { y = core.MinimalComplement(s, x) })
		// Verify minimality.
		minimal := true
		y.Each(func(id attr.ID) bool {
			if core.Complementary(s, x, y.Without(id)) {
				minimal = false
				return false
			}
			return true
		})
		row(n, d, y.Len(), minimal)
	}
}

func runE4(cfg config) {
	// (a) Reduction validity against DPLL.
	trials := 30
	if cfg.quick {
		trials = 10
	}
	rng := rand.New(rand.NewSource(4))
	agree := 0
	for i := 0; i < trials; i++ {
		phi := logic.Random3CNF(rng, 3, 2+rng.Intn(5))
		red, err := reductions.BuildTheorem2(phi)
		if err != nil {
			continue
		}
		_, hasComp := core.HasComplementOfSize(red.Schema, red.X, red.K)
		if hasComp == phi.Satisfiable() {
			agree++
		}
	}
	fmt.Printf("(a) reduction validity: %d/%d instances agree with DPLL\n", agree, trials)

	// (b) exact search blowup on S_phi schemas.
	ns := []int{1, 2, 3, 4}
	if cfg.quick {
		ns = []int{1, 2, 3}
	}
	fmt.Println("(b) exact minimum-complement search on S_φ:")
	row("n(vars)", "|U|", "time")
	for _, n := range ns {
		phi := logic.Random3CNF(rng, max(n, 3), n+2)
		phi.Vars = max(n, 3)
		red, err := reductions.BuildTheorem2(phi)
		if err != nil {
			continue
		}
		d := timeIt(1, func() { core.MinimumComplement(red.Schema, red.X) })
		row(n, red.Schema.Universe().Size(), d)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
