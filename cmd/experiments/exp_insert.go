package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func init() {
	register("E5", "Theorem 3: exact insertion-translatability test, |V| scaling", runE5)
	register("E6", "Translation T_u = R ∪ t*π_Y(R): apply cost and invariants", runE6)
	register("E7", "Test 1: speed and acceptance gap vs. the exact test", runE7)
	register("E8", "Test 2: goodness check and per-insert cost on good complements", runE8)
	register("E11", "Theorem 6: complement finding within min(|V|, 2^|X|) tests", runE11)
	register("E13", "Theorem 8: deletion decided in O(|V| + |Σ|)", runE13)
	register("A5", "Ablation: incremental overlay vs. rebuild-and-rechase impositions", runA5)
	register("E14", "Theorem 9: replacement translatability, |V| scaling", runE14)
}

// chainSweep returns the |V| sweep sizes.
func chainSweep(cfg config) []int {
	if cfg.quick {
		return []int{16, 64, 256}
	}
	return []int{16, 64, 256, 1024}
}

func runE5(cfg config) {
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	visits := cfg.meter("chase_instance_row_visits_total")
	row("|V|", "time", "chases", "rowvisits", "slope")
	var prev time.Duration
	var prevN int
	for _, n := range chainSweep(cfg) {
		v := c.ViewInstance(n)
		t := c.InsertTuple(n)
		var d *core.Decision
		elapsed := timeIt(3, func() {
			var err error
			d, err = p.DecideInsert(v, t)
			if err != nil || !d.Translatable {
				panic(fmt.Sprintf("chain insert failed: %v %v", err, d))
			}
		})
		slope := "-"
		if prev > 0 {
			slope = fmt.Sprintf("%.2f", math.Log(float64(elapsed)/float64(prev))/math.Log(float64(n)/float64(prevN)))
		}
		row(n, elapsed, d.ChaseCalls, visits.cell(3), slope)
		prev, prevN = elapsed, n
	}
	fmt.Println("(paper bound: O(|V|³ log |V|); measured slope is the empirical exponent)")
}

func runE6(cfg config) {
	e := workload.NewEDM()
	p := core.MustPair(e.Schema, e.ED, e.DM)
	sizes := chainSweep(cfg)
	row("|R|", "apply time", "legal", "complement-const")
	for _, n := range sizes {
		db := e.Instance(n, max(2, n/16))
		t := e.NewEmployeeTuple("newbie", 0)
		var out *relation.Relation
		elapsed := timeIt(3, func() {
			var err error
			out, err = p.ApplyInsert(db, t)
			if err != nil {
				panic(err)
			}
		})
		legal, _ := e.Schema.Legal(out)
		constant := out.Project(e.DM).Equal(db.Project(e.DM))
		row(n, elapsed, legal, constant)
	}
}

func runE7(cfg config) {
	// Speed on the chain family.
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	row("|V|", "exact", "test1", "speedup")
	for _, n := range chainSweep(cfg) {
		v := c.ViewInstance(n)
		t := c.InsertTuple(n)
		exact := timeIt(3, func() {
			if d, err := p.DecideInsert(v, t); err != nil || !d.Translatable {
				panic("exact failed")
			}
		})
		t1 := timeIt(3, func() {
			if _, err := p.DecideInsertTest1(v, t); err != nil {
				panic(err)
			}
		})
		row(n, exact, t1, fmt.Sprintf("%.1fx", float64(exact)/float64(t1)))
	}
	// Acceptance gap on random small cases.
	trials := 2000
	if cfg.quick {
		trials = 300
	}
	rng := rand.New(rand.NewSource(7))
	exactAcc, t1Acc, gap, comparable := 0, 0, 0, 0
	for i := 0; i < trials; i++ {
		pair, v, tup, ok := randomSmallCase(rng)
		if !ok {
			continue
		}
		d, err := pair.DecideInsert(v, tup)
		if err != nil {
			continue
		}
		d1, err := pair.DecideInsertTest1(v, tup)
		if err != nil {
			continue
		}
		comparable++
		if d.Translatable {
			exactAcc++
		}
		if d1.Translatable {
			t1Acc++
		}
		if d.Translatable && !d1.Translatable {
			gap++
		}
		if d1.Translatable && !d.Translatable {
			fmt.Println("!! Test 1 accepted an untranslatable insertion (soundness bug)")
		}
	}
	fmt.Printf("acceptance gap on %d random cases: exact=%d test1=%d translatable-but-rejected=%d\n",
		comparable, exactAcc, t1Acc, gap)
}

// randomSmallCase mirrors the core test generator: a random 4-attribute FD
// schema, view, minimal complement, 2-tuple view instance and a tuple.
func randomSmallCase(rng *rand.Rand) (*core.Pair, *relation.Relation, relation.Tuple, bool) {
	u := smallUniverse()
	sigma := dep.NewSet(u)
	for _, f := range workload.RandomFDs(u, rng, 1+rng.Intn(3)) {
		sigma.Add(f)
	}
	s := core.MustSchema(u, sigma)
	x := u.Empty()
	for x.Len() < 2+rng.Intn(2) {
		x = x.With(attrID(rng.Intn(4)))
	}
	y := core.MinimalComplement(s, x)
	pair, err := core.NewPair(s, x, y)
	if err != nil {
		return nil, nil, nil, false
	}
	syms := value.NewSymbols()
	consts := syms.Ints(3)
	v := relation.New(x)
	for i := 0; i < 2+rng.Intn(2); i++ {
		t := make(relation.Tuple, x.Len())
		for c := range t {
			t[c] = consts[rng.Intn(3)]
		}
		v.Insert(t)
	}
	tup := make(relation.Tuple, x.Len())
	for c := range tup {
		tup[c] = consts[rng.Intn(3)]
	}
	if v.Contains(tup) {
		return nil, nil, nil, false
	}
	// The translatability tests assume V is a reachable view state.
	if ok, err := core.ViewConsistent(s, x, v); err != nil || !ok {
		return nil, nil, nil, false
	}
	return pair, v, tup, true
}

func runE8(cfg config) {
	// Goodness check cost vs schema size.
	row("|Σ|", "goodness time", "good?")
	rng := rand.New(rand.NewSource(8))
	for _, k := range []int{2, 4, 8, 16} {
		c := workload.NewChain(6, 3)
		_ = rng
		p := core.MustPair(c.Schema, c.X, c.Y)
		var good bool
		d := timeIt(20, func() {
			var err error
			good, err = p.IsGoodComplement()
			if err != nil {
				panic(err)
			}
		})
		row(k, d, good)
		break // chain Σ is fixed; per-size sweep below uses chains of width k
	}
	row("width", "goodness time", "good?")
	for _, w := range []int{4, 8, 16, 32} {
		c := workload.NewChain(w, w/2)
		p := core.MustPair(c.Schema, c.X, c.Y)
		var good bool
		d := timeIt(10, func() {
			var err error
			good, err = p.IsGoodComplement()
			if err != nil {
				panic(err)
			}
		})
		row(w, d, good)
	}
	// Per-insert Test 2 cost vs |V| on the (good) chain complement.
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	good, err := p.IsGoodComplement()
	if err != nil {
		panic(err)
	}
	fmt.Printf("chain complement good: %v\n", good)
	row("|V|", "test2", "exact", "agree")
	for _, n := range chainSweep(cfg) {
		v := c.ViewInstance(n)
		t := c.InsertTuple(n)
		var d2 *core.Decision
		t2 := timeIt(3, func() {
			var err error
			d2, err = p.DecideInsertTest2Known(v, t, good)
			if err != nil {
				panic(err)
			}
		})
		var d *core.Decision
		ex := timeIt(3, func() {
			var err error
			d, err = p.DecideInsert(v, t)
			if err != nil {
				panic(err)
			}
		})
		row(n, t2, ex, d2.Translatable == d.Translatable)
	}
}

func runE11(cfg config) {
	e := workload.NewEDM()
	row("|V|", "time", "tests", "bound min(|V|,2^|X|)")
	for _, n := range chainSweep(cfg) {
		v := e.ViewInstance(n, max(2, n/8))
		t := e.NewEmployeeTuple("waldo", 1)
		var res *core.FindResult
		elapsed := timeIt(3, func() {
			var err error
			res, err = core.FindInsertComplement(e.Schema, e.ED, v, t, core.TestExact)
			if err != nil {
				panic(err)
			}
		})
		bound := n
		if 4 < bound { // 2^|X| = 4 with |X| = 2
			bound = 4
		}
		ok := res.Tests <= bound
		row(n, elapsed, res.Tests, ok)
	}
}

func runA5(cfg config) {
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	row("|V|", "incremental", "rebuild", "agree")
	for _, n := range chainSweep(cfg) {
		v := c.ViewInstance(n)
		t := c.InsertTuple(n)
		p.SetImposeStrategy(core.ImposeIncremental)
		var di *core.Decision
		inc := timeIt(3, func() {
			var err error
			di, err = p.DecideInsert(v, t)
			if err != nil {
				panic(err)
			}
		})
		p.SetImposeStrategy(core.ImposeRebuild)
		var dr *core.Decision
		reb := timeIt(1, func() {
			var err error
			dr, err = p.DecideInsert(v, t)
			if err != nil {
				panic(err)
			}
		})
		p.SetImposeStrategy(core.ImposeIncremental)
		row(n, inc, reb, di.Translatable == dr.Translatable)
	}
	fmt.Println("(both engines decide Theorem 3's predicate; equivalence is property-tested)")
}

func runE13(cfg config) {
	// Worst case for condition (a): every department is unique, so
	// deleting any tuple scans the whole view before failing — the full
	// O(|V|) pass. The best case (an early sharer) short-circuits.
	e := workload.NewEDM()
	p := core.MustPair(e.Schema, e.ED, e.DM)
	row("|V|", "worst (scan)", "best (early)", "slope")
	var prev time.Duration
	var prevN int
	for _, n := range chainSweep(cfg) {
		worstV := e.ViewInstance(n, n) // unique departments
		worstT := worstV.Tuple(0).Clone()
		bestV := e.ViewInstance(n, 2) // two departments, sharer found fast
		bestT := bestV.Tuple(0).Clone()
		worst := timeIt(20, func() {
			if _, err := p.DecideDelete(worstV, worstT); err != nil {
				panic(err)
			}
		})
		best := timeIt(20, func() {
			if _, err := p.DecideDelete(bestV, bestT); err != nil {
				panic(err)
			}
		})
		slope := "-"
		if prev > 0 {
			slope = fmt.Sprintf("%.2f", math.Log(float64(worst)/float64(prev))/math.Log(float64(n)/float64(prevN)))
		}
		row(n, worst, best, slope)
		prev, prevN = worst, n
	}
	fmt.Println("(paper bound: O(|V| + |Σ|); worst-case slope ≈ 1)")
}

func runE14(cfg config) {
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	row("|V|", "case1 time", "case2 time")
	for _, n := range chainSweep(cfg) {
		v := c.ViewInstance(n)
		// Case 2: replace row 0 by a fresh tuple in the same pivot group.
		t1 := v.Tuple(0).Clone()
		t2case2 := c.InsertTuple(n)
		// Case 1: replace a row by the fresh tuple of the other pivot
		// group (pivot differs).
		t1b := v.Tuple(0).Clone()
		var other relation.Tuple
		pivotCol := c.X.Len() - 1
		for _, cand := range v.Tuples() {
			if cand[pivotCol] != t1b[pivotCol] {
				other = cand.Clone()
				other[0] = c.Syms.Const("freshcase1")
				break
			}
		}
		d2 := timeIt(3, func() {
			if _, err := p.DecideReplace(v, t1, t2case2); err != nil {
				panic(err)
			}
		})
		d1 := time.Duration(0)
		if other != nil {
			d1 = timeIt(3, func() {
				if _, err := p.DecideReplace(v, t1b, other); err != nil {
					panic(err)
				}
			})
		}
		row(n, d1, d2)
	}
}

var smallU = attr.MustUniverse("A", "B", "C", "D")

func smallUniverse() *attr.Universe { return smallU }

func attrID(i int) attr.ID { return attr.ID(i) }
