// Command loadgen replays a skewed mixed-op stream against a viewsrv
// instance from N simulated clients and gates the run on serving
// invariants: no acknowledged op may be lost (the final view must equal
// the view implied by the acks, for the keys loadgen owns) and the
// fair-share path must never see a 5xx. It reports client-observed
// p50/p95/p99 request latencies per tenant and can write a
// benchjson-compatible report for the CI artifact.
//
// Usage:
//
//	loadgen -addr host:port [-view ed] [-clients 8] [-ops 2000] [-batch 8]
//	        [-tenants good,hog] [-zipf 1.2] [-keys 256] [-depts 8]
//	        [-json] [-seed 1] [-report out.json] [-expect-resurrection]
//	        [-verify=true] [-shards 1] [-hotshard 0]
//
// Each client owns a private keyspace (employee names embed the tenant
// and client index), so the expected final presence of every key is
// exactly determined by that client's acknowledged ops — concurrent
// clients cannot perturb each other's verification. Keys are drawn from
// a zipfian distribution, so hot keys see long insert/delete/replace
// chains. Ops ride the binary-framed submit path unless -json is given.
// Throttled requests (429) honor Retry-After and retry; shed ops are
// definite non-applications and simply leave state unchanged.
//
// With -expect-resurrection, the run additionally requires the server's
// serve_resurrections_total counter to be at least 1 — the smoke test
// injects a storage fault and demands the pipeline healed through it.
//
// Against a sharded server (viewsrv -shards K), -shards K -hotshard F
// skews the key distribution: fraction F of each client's ops are
// pinned to keys whose names route to shard 0 under the same placement
// ring the server uses, so one shard's pipeline saturates while the
// others idle — the worst case for per-shard group commit. The
// remaining 1-F of traffic keeps the usual zipfian draw over the whole
// keyspace.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/constcomp/constcomp/internal/netserve"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/shard"
)

// benchRecord mirrors cmd/benchjson's Record so the -report file can be
// fed straight into `benchjson -compare`.
type benchRecord struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// client is one simulated network peer.
type client struct {
	idx    int
	tenant string
	ops    int
	rng    *rand.Rand
	zipf   *rand.Zipf

	// present tracks the dept each owned key's tuple currently has in
	// the view according to the acks this client received; -1 = absent.
	present []int

	// hotKeys are the indices of this client's keys whose names route
	// to the hot shard; with -hotshard F, fraction F of ops draw
	// uniformly from this set instead of the zipfian whole-keyspace
	// draw. Empty when skew is off.
	hotKeys []int
	pinned  int64

	// Gates and accounting, written by the client goroutine and read
	// after the WaitGroup join.
	acked     int64
	identity  int64
	rejected  int64
	shed      int64
	throttled int64
	opErrs    int64
	failures  []string
	reasons   map[string]int64
	latency   *obs.Histogram
}

type config struct {
	addr, view   string
	clients, ops int
	batch        int
	tenants      []string
	zipfS        float64
	keys, depts  int
	useJSON      bool
	seed         int64
	shards       int
	hotshard     float64

	// attrs is the view's column order as reported by the server; eCol
	// and dCol locate E and D within it.
	attrs      []string
	eCol, dCol int
}

// tuple renders (emp, dept) in the view's column order.
func (cfg *config) tuple(emp, dept string) []string {
	t := make([]string, len(cfg.attrs))
	t[cfg.eCol] = emp
	t[cfg.dCol] = dept
	return t
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	cfg := &config{}
	flag.StringVar(&cfg.addr, "addr", "", "server host:port (required)")
	flag.StringVar(&cfg.view, "view", "ed", "view to load")
	flag.IntVar(&cfg.clients, "clients", 8, "simulated clients")
	flag.IntVar(&cfg.ops, "ops", 2000, "total ops across all clients")
	flag.IntVar(&cfg.batch, "batch", 8, "ops per submit request")
	tenantsFlag := flag.String("tenants", "good", "comma-separated tenants, assigned to clients round-robin")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.2, "zipf skew s (>1) for key selection")
	flag.IntVar(&cfg.keys, "keys", 256, "keys per client")
	flag.IntVar(&cfg.depts, "depts", 8, "department domain size")
	flag.BoolVar(&cfg.useJSON, "json", false, "submit via JSON instead of the binary framing")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.shards, "shards", 1, "the server's shard count K (for -hotshard routing)")
	flag.Float64Var(&cfg.hotshard, "hotshard", 0, "fraction of traffic pinned to shard 0's key range (requires -shards > 1)")
	report := flag.String("report", "", "write a benchjson-compatible latency report here")
	expectRes := flag.Bool("expect-resurrection", false, "require serve_resurrections_total >= 1 on the server")
	verify := flag.Bool("verify", true, "verify the final view against the acks")
	flag.Parse()
	if cfg.addr == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg.tenants = strings.Split(*tenantsFlag, ",")
	if cfg.hotshard < 0 || cfg.hotshard > 1 {
		log.Fatal("-hotshard must be in [0, 1]")
	}
	if cfg.hotshard > 0 && cfg.shards < 2 {
		log.Fatal("-hotshard needs -shards > 1: with one shard every key range is the hot one")
	}

	if err := run(cfg, *report, *expectRes, *verify); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *config, reportPath string, expectRes, verify bool) error {
	base := "http://" + cfg.addr
	httpc := &http.Client{Timeout: 60 * time.Second}

	if err := discoverLayout(httpc, base, cfg); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	clients := make([]*client, cfg.clients)
	perClient := (cfg.ops + cfg.clients - 1) / cfg.clients
	for i := range clients {
		tenant := cfg.tenants[i%len(cfg.tenants)]
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)*7919))
		c := &client{
			idx:     i,
			tenant:  tenant,
			ops:     perClient,
			rng:     rng,
			zipf:    rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.keys-1)),
			present: make([]int, cfg.keys),
			latency: reg.Histogram("loadgen_" + tenant + "_request_ns"),
		}
		for k := range c.present {
			c.present[k] = -1
		}
		clients[i] = c
	}

	// With -hotshard, precompute each client's keys that land on shard
	// 0 under the same placement ring the server uses: routing hashes
	// the raw key name, so client and server always agree.
	if cfg.hotshard > 0 {
		router, err := shard.NewRouter(cfg.shards, 0, nil)
		if err != nil {
			return err
		}
		for _, c := range clients {
			for k := 0; k < cfg.keys; k++ {
				if router.ShardOfName(fmt.Sprintf("lg_%s_c%d_k%d", c.tenant, c.idx, k)) == 0 {
					c.hotKeys = append(c.hotKeys, k)
				}
			}
		}
	}

	t0 := obs.NowNS()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		//constvet:allow rawgo -- each client goroutine models one independent network peer; the simulated fleet IS the workload, which no scheduler abstraction expresses
		go func() {
			defer wg.Done()
			c.drive(cfg, httpc, base)
		}()
	}
	wg.Wait()
	wallNS := obs.NowNS() - t0

	// Aggregate and report.
	var acked, identity, rejected, shed, throttled, opErrs int64
	var failures []string
	for _, c := range clients {
		acked += c.acked
		identity += c.identity
		rejected += c.rejected
		shed += c.shed
		throttled += c.throttled
		opErrs += c.opErrs
		failures = append(failures, c.failures...)
	}
	fmt.Printf("loadgen: %d clients x %d ops: %d acked (%d identity), %d rejected, %d shed, %d throttled, %d op-errors in %.2fs\n",
		cfg.clients, perClient, acked, identity, rejected, shed, throttled, opErrs, float64(wallNS)/1e9)
	if cfg.hotshard > 0 {
		var pinned int64
		for _, c := range clients {
			pinned += c.pinned
		}
		fmt.Printf("loadgen: hotshard skew: %d ops pinned to shard 0's key range (target fraction %.2f)\n",
			pinned, cfg.hotshard)
	}
	reasons := map[string]int64{}
	for _, c := range clients {
		for msg, n := range c.reasons {
			reasons[msg] += n
		}
	}
	msgs := make([]string, 0, len(reasons))
	for msg := range reasons {
		msgs = append(msgs, msg)
	}
	sort.Strings(msgs)
	for _, msg := range msgs {
		fmt.Printf("  %6d x %s\n", reasons[msg], msg)
	}
	tenantSet := map[string]bool{}
	for _, t := range cfg.tenants {
		if tenantSet[t] {
			continue
		}
		tenantSet[t] = true
		h := reg.Histogram("loadgen_" + t + "_request_ns")
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  tenant %-10s %6d requests  p50 %8.0fns  p95 %8.0fns  p99 %8.0fns\n",
			t, h.Count(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
	}

	if reportPath != "" {
		if err := writeReport(reportPath, cfg, reg, acked, wallNS); err != nil {
			return err
		}
	}

	// Gates, all evaluated so a run reports every violation at once.
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL:", f)
	}
	if verify {
		if errs := verifyFinalView(httpc, base, cfg, clients); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "loadgen: FAIL: lost ack:", e)
			}
			failures = append(failures, errs...)
		}
	}
	if expectRes {
		if err := checkResurrection(httpc, base); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL:", err)
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d invariant violation(s)", len(failures))
	}
	fmt.Println("loadgen: all invariants held")
	return nil
}

// discoverLayout reads the view's column order from the server so
// tuples are built in the order the server expects.
func discoverLayout(httpc *http.Client, base string, cfg *config) error {
	resp, err := httpc.Get(base + "/v1/views/" + cfg.view)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET view %s: %s: %s", cfg.view, resp.Status, body)
	}
	var vr netserve.ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return err
	}
	cfg.attrs = vr.Attrs
	cfg.eCol, cfg.dCol = -1, -1
	for i, a := range vr.Attrs {
		switch a {
		case "E":
			cfg.eCol = i
		case "D":
			cfg.dCol = i
		}
	}
	if cfg.eCol < 0 || cfg.dCol < 0 {
		return fmt.Errorf("view %s lacks E/D columns (attrs %v); loadgen drives the ed view", cfg.view, vr.Attrs)
	}
	return nil
}

// drive runs one client's op stream: batches of -batch ops, each batch
// one submit request, state advanced only by acked results.
func (c *client) drive(cfg *config, httpc *http.Client, base string) {
	url := base + "/v1/views/" + cfg.view + "/submit"
	sent := 0
	for sent < c.ops {
		n := cfg.batch
		if rem := c.ops - sent; rem < n {
			n = rem
		}
		ops := make([]netserve.WireOp, n)
		keys := make([]int, n)
		for i := range ops {
			k := c.pickKey(cfg)
			keys[i] = k
			ops[i] = c.genFor(cfg, k)
		}
		results, status, retryAfter, err := c.submit(cfg, httpc, url, ops)
		if err != nil {
			c.failures = append(c.failures, fmt.Sprintf("client %d: %v", c.idx, err))
			return
		}
		if status == http.StatusTooManyRequests {
			// Throttled or budget-limited: honor Retry-After and replay
			// the same batch. Not a failure — admission doing its job.
			c.throttled++
			obs.SystemClock().Sleep(int64(retryAfter) * int64(time.Second))
			continue
		}
		if status >= 500 {
			c.failures = append(c.failures, fmt.Sprintf("client %d: submit returned %d", c.idx, status))
			return
		}
		if status != http.StatusOK {
			c.failures = append(c.failures, fmt.Sprintf("client %d: submit returned %d", c.idx, status))
			return
		}
		if len(results) != n {
			c.failures = append(c.failures, fmt.Sprintf("client %d: %d results for %d ops", c.idx, len(results), n))
			return
		}
		for i, res := range results {
			c.apply(cfg, keys[i], ops[i], res)
		}
		sent += n
	}
}

// pickKey draws the next key index: with -hotshard F, fraction F of
// draws come uniformly from the keys routing to the hot shard; the
// rest keep the zipfian whole-keyspace draw.
func (c *client) pickKey(cfg *config) int {
	if len(c.hotKeys) > 0 && c.rng.Float64() < cfg.hotshard {
		c.pinned++
		return c.hotKeys[c.rng.Intn(len(c.hotKeys))]
	}
	return int(c.zipf.Uint64())
}

// genFor builds the op for key k from current tracked presence.
func (c *client) genFor(cfg *config, k int) netserve.WireOp {
	name := fmt.Sprintf("lg_%s_c%d_k%d", c.tenant, c.idx, k)
	if c.present[k] < 0 {
		dept := c.rng.Intn(cfg.depts)
		return netserve.WireOp{Kind: netserve.KindInsert, Tuple: cfg.tuple(name, fmt.Sprintf("dept%d", dept))}
	}
	cur := fmt.Sprintf("dept%d", c.present[k])
	switch c.rng.Intn(10) {
	case 0, 1, 2:
		return netserve.WireOp{Kind: netserve.KindDelete, Tuple: cfg.tuple(name, cur)}
	default:
		dept := c.rng.Intn(cfg.depts)
		return netserve.WireOp{Kind: netserve.KindReplace,
			Tuple: cfg.tuple(name, cur), With: cfg.tuple(name, fmt.Sprintf("dept%d", dept))}
	}
}

// apply advances tracked state by one result: only acked (applied) ops
// change expectations; rejections and sheds are definite
// non-applications.
func (c *client) apply(cfg *config, k int, op netserve.WireOp, res netserve.OpResult) {
	switch {
	case res.Applied:
		c.acked++
		if res.Identity {
			// An identity translation is acknowledged but changed
			// nothing (e.g. deleting a tuple the view no longer holds
			// because an earlier op in the same batch replaced it).
			c.identity++
			return
		}
		switch op.Kind {
		case netserve.KindInsert:
			c.present[k] = deptOf(cfg, op.Tuple)
		case netserve.KindDelete:
			c.present[k] = -1
		case netserve.KindReplace:
			c.present[k] = deptOf(cfg, op.With)
		}
	case res.Rejected:
		c.rejected++
		msg := res.Reason
		if msg == "" {
			msg = res.Error
		}
		c.reason("rejected: " + msg)
	case res.Shed:
		c.shed++
	default:
		c.opErrs++
		c.reason("error: " + res.Error)
	}
}

// reason tallies a non-applied outcome's message for the summary.
func (c *client) reason(msg string) {
	if c.reasons == nil {
		c.reasons = make(map[string]int64)
	}
	c.reasons[msg]++
}

func deptOf(cfg *config, tuple []string) int {
	d, err := strconv.Atoi(strings.TrimPrefix(tuple[cfg.dCol], "dept"))
	if err != nil {
		return -1
	}
	return d
}

// submit sends one batch in the configured encoding and decodes the
// per-op results. retryAfter is the parsed Retry-After on 429.
func (c *client) submit(cfg *config, httpc *http.Client, url string, ops []netserve.WireOp) ([]netserve.OpResult, int, int, error) {
	var body []byte
	contentType := netserve.ContentTypeJSON
	if !cfg.useJSON {
		contentType = netserve.ContentTypeFrame
		var err error
		for _, op := range ops {
			if body, err = netserve.AppendOpFrame(body, op); err != nil {
				return nil, 0, 0, err
			}
		}
	} else {
		var err error
		if body, err = json.Marshal(netserve.SubmitRequest{Ops: ops}); err != nil {
			return nil, 0, 0, err
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(netserve.HeaderTenant, c.tenant)
	t0 := obs.NowNS()
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	c.latency.ObserveDuration(obs.NowNS() - t0)
	if resp.StatusCode == http.StatusTooManyRequests {
		_, _ = io.Copy(io.Discard, resp.Body)
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		if retry < 1 {
			retry = 1
		}
		return nil, resp.StatusCode, retry, nil
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, 0, nil
	}
	if resp.Header.Get("Content-Type") == netserve.ContentTypeFrame {
		br := bufio.NewReader(resp.Body)
		var results []netserve.OpResult
		for {
			res, err := netserve.ReadResultFrame(br)
			if err == io.EOF {
				return results, resp.StatusCode, 0, nil
			}
			if err != nil {
				return nil, 0, 0, err
			}
			results = append(results, res)
		}
	}
	var sr netserve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, 0, 0, err
	}
	return sr.Results, resp.StatusCode, 0, nil
}

// verifyFinalView checks the lost-ack gate: for every key loadgen owns,
// the final view holds exactly the tuple implied by that client's acks.
func verifyFinalView(httpc *http.Client, base string, cfg *config, clients []*client) []string {
	resp, err := httpc.Get(base + "/v1/views/" + cfg.view)
	if err != nil {
		return []string{err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return []string{fmt.Sprintf("final read: %s", resp.Status)}
	}
	var vr netserve.ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return []string{err.Error()}
	}
	got := map[string]string{} // emp -> dept, loadgen-owned rows only
	for _, row := range vr.Rows {
		if len(row) != len(cfg.attrs) {
			return []string{fmt.Sprintf("row width %d != %d", len(row), len(cfg.attrs))}
		}
		if emp := row[cfg.eCol]; strings.HasPrefix(emp, "lg_") {
			got[emp] = row[cfg.dCol]
		}
	}
	var errs []string
	expected := 0
	for _, c := range clients {
		for k, dept := range c.present {
			emp := fmt.Sprintf("lg_%s_c%d_k%d", c.tenant, c.idx, k)
			switch {
			case dept < 0:
				if d, ok := got[emp]; ok {
					errs = append(errs, fmt.Sprintf("%s should be absent, view has dept %s", emp, d))
				}
			default:
				expected++
				want := fmt.Sprintf("dept%d", dept)
				if d, ok := got[emp]; !ok {
					errs = append(errs, fmt.Sprintf("%s acked into %s but missing from the view", emp, want))
				} else if d != want {
					errs = append(errs, fmt.Sprintf("%s acked into %s but view has %s", emp, want, d))
				}
			}
		}
	}
	if len(errs) > 8 {
		errs = append(errs[:8], fmt.Sprintf("... and %d more", len(errs)-8))
	}
	fmt.Printf("loadgen: final view verified: %d owned tuples expected, %d found, seq %d\n",
		expected, len(got), vr.Seq)
	return errs
}

// checkResurrection requires the server to have healed at least once.
func checkResurrection(httpc *http.Client, base string) error {
	resp, err := httpc.Get(base + "/metricz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	if n := snap.Counters["serve_resurrections_total"]; n < 1 {
		return fmt.Errorf("expected a resurrection, serve_resurrections_total = %d", n)
	}
	fmt.Printf("loadgen: resurrection observed (serve_resurrections_total = %d)\n",
		snap.Counters["serve_resurrections_total"])
	return nil
}

// writeReport emits a benchjson-compatible record array: whole-run
// throughput plus per-tenant latency quantiles (as ns/op records, so
// the bench gate can track them).
func writeReport(path string, cfg *config, reg *obs.Registry, acked int64, wallNS int64) error {
	recs := []benchRecord{}
	if acked > 0 {
		recs = append(recs, benchRecord{
			Name:       "BenchmarkLoadgen/acked_ops",
			Procs:      cfg.clients,
			Iterations: acked,
			NsPerOp:    float64(wallNS) / float64(acked),
		})
	}
	seen := map[string]bool{}
	tenants := []string{}
	for _, t := range cfg.tenants {
		if !seen[t] {
			seen[t] = true
			tenants = append(tenants, t)
		}
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		h := reg.Histogram("loadgen_" + t + "_request_ns")
		if h.Count() == 0 {
			continue
		}
		for _, qv := range []struct {
			q string
			v float64
		}{{"p50", h.Quantile(0.5)}, {"p95", h.Quantile(0.95)}, {"p99", h.Quantile(0.99)}} {
			recs = append(recs, benchRecord{
				Name:       "BenchmarkLoadgen/" + t + "_" + qv.q,
				Procs:      cfg.clients,
				Iterations: h.Count(),
				NsPerOp:    qv.v,
			})
		}
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}
