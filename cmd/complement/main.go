// Command complement analyzes complements of a projective view: the
// minimal (nonredundant) complement of Corollary 2, the minimum
// complement of Theorem 2 (exponential search), all minimum-size
// complements, and the Test-2 goodness of each candidate.
//
// Usage:
//
//	complement -schema schema.txt -view "E D" [-all] [-k 2]
//
// The schema file format is:
//
//	attrs: E D M
//	E -> D
//	D -> M
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("complement: ")
	schemaPath := flag.String("schema", "", "path to the schema file (required)")
	viewSpec := flag.String("view", "", "view attributes, e.g. \"E D\" (required)")
	all := flag.Bool("all", false, "list every minimum-size complement")
	k := flag.Int("k", -1, "also decide whether a complement of exactly this size exists")
	witness := flag.String("witness", "", "attribute set Y: if (X, Y) is not complementary, print two distinct legal instances with equal projections")
	flag.Parse()
	if *schemaPath == "" || *viewSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := workload.ParseSchema(string(text))
	if err != nil {
		log.Fatal(err)
	}
	u := schema.Universe()
	x, err := u.ParseSet(*viewSpec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schema: U = %v, |Σ| = %d\n", u.All(), schema.Sigma().Len())
	fmt.Printf("view:   X = %v\n\n", x)

	minimal := core.MinimalComplement(schema, x)
	fmt.Printf("minimal complement (Corollary 2): %v  (size %d)\n", minimal, minimal.Len())
	minimum, ok := core.MinimumComplement(schema, x)
	if !ok {
		log.Fatal("no complement exists (unexpected: U always works)")
	}
	fmt.Printf("minimum complement (Theorem 2):   %v  (size %d)\n", minimum, minimum.Len())

	if *all {
		fmt.Printf("\nall complements of size %d:\n", minimum.Len())
		var found []attr.Set
		u.All().SubsetsOfSize(minimum.Len(), func(y attr.Set) bool {
			if core.Complementary(schema, x, y) {
				found = append(found, y)
			}
			return true
		})
		attr.SortSets(found)
		for _, y := range found {
			good := "n/a"
			if p, err := core.NewPair(schema, x, y); err == nil {
				if g, err := p.IsGoodComplement(); err == nil {
					good = fmt.Sprintf("%v", g)
				}
			}
			fmt.Printf("  %v  (good complement: %s)\n", y, good)
		}
	}

	if *k >= 0 {
		y, ok := core.HasComplementOfSize(schema, x, *k)
		if ok {
			fmt.Printf("\ncomplement of size %d exists: %v\n", *k, y)
		} else {
			fmt.Printf("\nno complement of size %d exists\n", *k)
		}
	}

	if *witness != "" {
		y, err := u.ParseSet(*witness)
		if err != nil {
			log.Fatal(err)
		}
		if core.Complementary(schema, x, y) {
			fmt.Printf("\n(%v, %v) are complementary — no witness exists\n", x, y)
			return
		}
		syms := value.NewSymbols()
		r, r2, err := core.NonComplementaryWitness(schema, x, y, syms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n(%v, %v) are NOT complementary. Witness instances with equal projections:\nR:\n%s\nR':\n%s",
			x, y, r.Format(syms), r2.Format(syms))
	}
}
