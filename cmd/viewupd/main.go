// Command viewupd runs a constant-complement view-update session against
// a universal-relation database: it loads a schema and an instance,
// fixes a view and a complement, and executes update commands, refusing
// untranslatable ones with the paper's diagnosis.
//
// Usage:
//
//	viewupd -schema schema.txt -data data.txt -view "E D" [-complement "D M"]
//	        [-script s.txt] [-journal dir] [-recover [-force]] [-timeout 2s]
//	        [-batch n] [-pipeline] [-incremental=false] [-metrics report.json]
//	        [-shards K]
//
// Without -complement, the minimal complement of Corollary 2 is used.
// With -batch n (requires -journal), consecutive update commands are
// buffered and applied as one group commit — one journal write and one
// fsync shared by up to n updates — flushing on a non-update command,
// a full buffer, or end of script. Durability is unchanged: a command's
// outcome is printed only after the fsync covering it. With -pipeline
// (requires -journal), updates run through the serving pipeline
// (internal/serve), which overlaps the decision chase with journal
// fsyncs; combined with -batch n, updates are submitted asynchronously
// in windows of n so they share fsyncs through the pipeline. The
// pipeline is self-healing: if a storage fault breaks the session
// mid-run, it is quarantined and a fresh session is resurrected by
// re-running recovery against the same -journal directory (the online
// form of -recover) — acknowledged updates survive byte-identically,
// un-acked ones are retried or rejected, never silently dropped.
// By default the session maintains delta state (view and complement
// indexes, an incrementally chased padding) so each decide/apply costs
// time proportional to the update, not the instance; the full
// re-projection path runs automatically whenever the delta state cannot
// prove the canonical outcome (and after a pipeline resync, which drops
// the maintained state). -incremental=false forces the full path for
// every command. With -metrics, every subsystem is instrumented and a report is
// written to the given file on exit (even when a scripted run fails):
// expvar-style JSON by default, Prometheus text format when the file
// name ends in .prom, stdout when the name is "-".
// With -shards K > 1 (requires -journal and -data), the instance is
// hash-partitioned by the view's first attribute across K shard
// directories (<journal>/s0 … s<K-1>), each an independent journal +
// snapshot + group-commit pipeline behind the placement ring
// (internal/shard). Updates route to the shard owning their key;
// replacements that move a key between shards run the two-phase
// cross-shard commit. Reopening the same -journal recovers every shard
// and resolves any in-doubt cross-shard intent before the first
// command runs (-recover is implied; -data still seeds shards that
// have no durable state yet). In sharded mode `view` prints the union
// across shards, while `show`, `decide`, and -incremental=false are
// unsupported (the base instance and decision procedure live inside
// each shard).
//
// With -journal, the session is durable: every applied update is
// journaled and fsynced in dir before it is acknowledged, and -recover
// resumes a session killed mid-run by replaying the journal onto the
// last snapshot (pass the same -schema/-view/-complement flags; -data
// is not needed). Recovery refuses to truncate mid-journal corruption
// that would drop acknowledged updates unless -force is given. With
// -timeout, each command's decision procedure is bounded and times out
// instead of hanging on adversarial schemas.
//
// Commands (from -script or stdin), one per line:
//
//	insert  <v1> <v2> ...         insert a view tuple
//	delete  <v1> <v2> ...         delete a view tuple
//	replace <v1> ... / <w1>...    replace one view tuple by another
//	decide  <insert|delete> <t>   test translatability without applying
//	decide  replace <t> / <t>
//	show                          print the database
//	view                          print the view instance
//	quit
//
// A malformed or failed command is reported with its line number and
// skipped; the session continues. In scripted mode the exit status is
// non-zero if any command failed (rejected updates are a normal outcome,
// not a failure).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// updSession is the slice of a session the command loop needs; both the
// in-memory core.Session and the durable store.Session satisfy it.
type updSession interface {
	Database() *relation.Relation
	View() *relation.Relation
	DecideCtx(context.Context, core.UpdateOp) (*core.Decision, error)
	ApplyCtx(context.Context, core.UpdateOp) (*core.Decision, error)
	SetIncremental(bool)
}

var (
	_ updSession = (*core.Session)(nil)
	_ updSession = (*store.Session)(nil)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("viewupd: ")
	schemaPath := flag.String("schema", "", "path to the schema file (required)")
	dataPath := flag.String("data", "", "path to the instance file (required unless -recover)")
	viewSpec := flag.String("view", "", "view attributes, e.g. \"E D\" (required)")
	compSpec := flag.String("complement", "", "complement attributes (default: minimal complement)")
	scriptPath := flag.String("script", "", "command script (default: stdin)")
	journalDir := flag.String("journal", "", "directory for the durable journal + snapshots")
	recoverFlag := flag.Bool("recover", false, "resume a crashed session from -journal")
	forceFlag := flag.Bool("force", false, "with -recover: truncate mid-journal corruption even if intact records past the damage are lost")
	timeout := flag.Duration("timeout", 0, "per-command decision budget (0 = unlimited)")
	batchN := flag.Int("batch", 1, "group up to n consecutive updates into one journal fsync (requires -journal)")
	pipelineFlag := flag.Bool("pipeline", false, "run updates through the serving pipeline (requires -journal)")
	incFlag := flag.Bool("incremental", true, "maintain delta state so decide/apply cost tracks the update size; -incremental=false forces the full re-projection path")
	metricsPath := flag.String("metrics", "", "write a metrics report here on exit (JSON, or Prometheus text if the name ends in .prom; - for stdout)")
	shardsFlag := flag.Int("shards", 1, "hash-partition the instance across K shard journals (requires -journal and -data)")
	flag.Parse()
	if *schemaPath == "" || *viewSpec == "" || (*dataPath == "" && !*recoverFlag) {
		flag.Usage()
		os.Exit(2)
	}
	if *recoverFlag && *journalDir == "" {
		log.Fatal("-recover requires -journal")
	}
	if *batchN < 1 {
		log.Fatal("-batch must be at least 1")
	}
	if (*batchN > 1 || *pipelineFlag) && *journalDir == "" {
		log.Fatal("-batch/-pipeline require -journal: group commit is about sharing journal fsyncs")
	}
	if *shardsFlag > 1 {
		if *journalDir == "" || *dataPath == "" {
			log.Fatal("-shards requires -journal (each shard keeps its own) and -data (fresh shards need the seed instance)")
		}
		if !*incFlag {
			log.Fatal("-incremental=false is not supported with -shards: each shard session manages its own delta state")
		}
	}

	// With -metrics, instrument every subsystem the session can exercise:
	// relational kernels, the chases, the solvers, budgets, session
	// decide/apply, and the durable store.
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		relation.SetMetrics(reg)
		chase.SetMetrics(reg)
		logic.SetMetrics(reg)
		budget.SetMetrics(reg)
		core.SetMetrics(reg)
		store.SetMetrics(reg)
		serve.SetMetrics(reg)
	}

	schemaText, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := workload.ParseSchema(string(schemaText))
	if err != nil {
		log.Fatal(err)
	}
	u := schema.Universe()
	x, err := u.ParseSet(*viewSpec)
	if err != nil {
		log.Fatal(err)
	}
	y := core.MinimalComplement(schema, x)
	if *compSpec != "" {
		if y, err = u.ParseSet(*compSpec); err != nil {
			log.Fatal(err)
		}
	}
	pair, err := core.NewPair(schema, x, y)
	if err != nil {
		log.Fatal(err)
	}
	syms := value.NewSymbols()

	var db *relation.Relation
	if *dataPath != "" {
		dataText, err := os.ReadFile(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
		if db, err = workload.ParseData(schema, syms, string(dataText)); err != nil {
			log.Fatal(err)
		}
		if !db.Attrs().Equal(u.All()) {
			log.Fatalf("instance must cover all of U = %v", u.All())
		}
		if ok, bad := schema.Legal(db); !ok {
			log.Fatalf("instance violates %v", bad)
		}
	}

	var sess updSession
	var st *store.Session
	var storeFS store.FS
	var multi *shard.Multi
	switch {
	case *shardsFlag > 1:
		fss := make([]store.FS, *shardsFlag)
		for k := range fss {
			dir := filepath.Join(*journalDir, fmt.Sprintf("s%d", k))
			if err := os.MkdirAll(dir, 0o777); err != nil {
				log.Fatal(err)
			}
			if fss[k], err = store.NewDirFS(dir); err != nil {
				log.Fatal(err)
			}
		}
		m, rep, err := shard.Open(fss, pair, db, syms, shard.Options{
			Shards: *shardsFlag,
			Serve:  serve.Options{MaxBatch: *batchN},
		})
		if err != nil {
			log.Fatal(err)
		}
		for k, r := range rep.Shards {
			if r != nil {
				fmt.Printf("shard %d: %v\n", k, r)
			}
		}
		for _, r := range rep.Resolved {
			fmt.Printf("resolved in-doubt cross-shard xid %d: committed=%v\n", r.Xid, r.Committed)
		}
		defer func() {
			if err := m.Close(); err != nil {
				log.Print(err)
			}
		}()
		multi = m
	case *journalDir != "":
		fsys, err := store.NewDirFS(*journalDir)
		if err != nil {
			log.Fatal(err)
		}
		storeFS = fsys
		if *recoverFlag {
			s, rep, err := store.Recover(fsys, pair, syms, store.Options{ForceRecover: *forceFlag})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(rep)
			st = s
		} else {
			s, err := store.Create(fsys, pair, db, syms, store.Options{})
			if err != nil {
				log.Fatal(err)
			}
			st = s
		}
		defer st.Close()
		sess = st
	default:
		s, err := core.NewSession(pair, db)
		if err != nil {
			log.Fatal(err)
		}
		sess = s
	}
	// Incremental maintenance defaults on; the decide/apply paths fall
	// back to the full pass on their own whenever the delta state cannot
	// prove the canonical outcome, so the flag only forces the baseline.
	// (Sharded sessions live inside their shards and manage their own.)
	if sess != nil {
		sess.SetIncremental(*incFlag)
	}

	fmt.Printf("view X = %v, constant complement Y = %v\n", x, y)
	if good, err := pair.IsGoodComplement(); err == nil {
		fmt.Printf("good complement: %v\n", good)
	}

	var in io.Reader = os.Stdin
	scripted := *scriptPath != ""
	if scripted {
		f, err := os.Open(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	r := &runner{sess: sess, syms: syms, out: os.Stdout, timeout: *timeout, batch: *batchN, st: st, multi: multi}
	if *pipelineFlag && multi == nil {
		// The pipeline self-heals: when a storage fault breaks the
		// session, it quarantines it and resurrects a fresh one by
		// re-running recovery off the same journal directory —
		// acknowledged updates are replayed, un-acked ones retried. This
		// is the same machinery -recover uses at startup, run online.
		pipe, err := serve.New(st, serve.Options{
			MaxBatch: *batchN,
			Resurrect: func() (*store.Session, error) {
				ns, _, err := store.Recover(storeFS, pair, syms, store.Options{ForceRecover: *forceFlag})
				if err != nil {
					return nil, err
				}
				ns.SetIncremental(*incFlag)
				return ns, nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := pipe.Close(); err != nil {
				log.Print(err)
			}
			// A resurrection replaced the session we opened; close the
			// replacement too (the original is covered by its own defer).
			if cur := pipe.Store(); cur != st {
				cur.Close()
			}
		}()
		r.pipe = pipe
	}
	scriptErr := runScript(r, in)
	// The metrics report is written before the exit status is decided so
	// a failing script still leaves its instrumentation behind.
	if reg != nil {
		if err := writeMetricsReport(reg, *metricsPath); err != nil {
			log.Print(err)
		}
	}
	if scriptErr != nil {
		if scripted {
			log.Fatal(scriptErr)
		}
		log.Print(scriptErr)
	}
}

// writeMetricsReport dumps the registry to path: Prometheus text format
// when the name ends in .prom, expvar-style JSON otherwise, stdout when
// path is "-".
func writeMetricsReport(reg *obs.Registry, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".prom") {
		return reg.WritePrometheus(w)
	}
	return reg.WriteJSON(w)
}

// runner executes commands against a session, skipping bad lines.
type runner struct {
	sess    updSession
	syms    *value.Symbols
	out     io.Writer
	timeout time.Duration
	errs    int

	// Group commit state. With batch > 1, consecutive update commands
	// accumulate in pending and are applied as one store batch (or one
	// pipeline window); any non-update command flushes first so the
	// state it shows includes every buffered update.
	batch   int
	st      *store.Session
	pipe    *serve.Pipeline
	multi   *shard.Multi
	pending []bufferedOp
}

// bufferedOp is one update command awaiting its group commit.
type bufferedOp struct {
	cmd string
	op  core.UpdateOp
}

// runScript feeds commands to the runner, numbering raw lines from 1. A
// malformed or failed command is reported and skipped; the script keeps
// going. The returned error summarizes how many commands failed (nil if
// none), so scripted callers can exit non-zero.
func runScript(r *runner, in io.Reader) error {
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			break
		}
		if err := r.execute(line); err != nil {
			r.errs++
			fmt.Fprintf(r.out, "line %d: error: %v (command skipped)\n", lineNo, err)
		}
	}
	r.flush()
	if err := sc.Err(); err != nil {
		return err
	}
	if r.errs > 0 {
		return fmt.Errorf("%d command(s) failed", r.errs)
	}
	return nil
}

// sessNow returns the session reads and decides should target: the
// pipeline's current store session when one is running — resurrection
// may have replaced the session the runner was built with — and the
// fixed session otherwise.
func (r *runner) sessNow() updSession {
	if r.pipe != nil {
		return r.pipe.Store()
	}
	return r.sess
}

// viewRel returns the relation tuple parsing and `view` print against:
// the union across shards in sharded mode, the session's view
// otherwise.
func (r *runner) viewRel() *relation.Relation {
	if r.multi != nil {
		v, _, _ := r.multi.Published()
		return v
	}
	return r.sessNow().View()
}

func (r *runner) ctx() (context.Context, context.CancelFunc) {
	if r.timeout > 0 {
		return context.WithTimeout(context.Background(), r.timeout)
	}
	return context.Background(), func() {}
}

// parseOp parses "insert"/"delete"/"replace" operand text into an
// update op over the current view.
func (r *runner) parseOp(kind, rest string) (core.UpdateOp, error) {
	view := r.viewRel()
	switch kind {
	case "insert", "delete":
		t, err := workload.ParseTuple(view, r.syms, rest)
		if err != nil {
			return core.UpdateOp{}, err
		}
		if kind == "insert" {
			return core.Insert(t), nil
		}
		return core.Delete(t), nil
	case "replace":
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 {
			return core.UpdateOp{}, fmt.Errorf("usage: replace <tuple> / <tuple>")
		}
		t1, err := workload.ParseTuple(view, r.syms, strings.TrimSpace(parts[0]))
		if err != nil {
			return core.UpdateOp{}, err
		}
		t2, err := workload.ParseTuple(view, r.syms, strings.TrimSpace(parts[1]))
		if err != nil {
			return core.UpdateOp{}, err
		}
		return core.Replace(t1, t2), nil
	}
	return core.UpdateOp{}, fmt.Errorf("unknown update kind %q", kind)
}

// execute runs one command. A non-nil error means the command was
// malformed or could not run (the caller reports and skips it); a
// rejected update is a normal outcome and returns nil.
func (r *runner) execute(line string) error {
	fields := strings.SplitN(line, " ", 2)
	cmd := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = fields[1]
	}
	switch cmd {
	case "insert", "delete", "replace":
	default:
		// Any non-update command sees the database with every buffered
		// update already applied (and durable).
		r.flush()
	}
	switch cmd {
	case "show":
		if r.multi != nil {
			return fmt.Errorf("show is not supported with -shards: each shard holds only its slice of the base instance")
		}
		fmt.Fprint(r.out, r.sessNow().Database().Format(r.syms))
	case "view":
		fmt.Fprint(r.out, r.viewRel().Format(r.syms))
	case "decide":
		if r.multi != nil {
			return fmt.Errorf("decide is not supported with -shards: the decision runs inside the owning shard on apply")
		}
		sub := strings.SplitN(rest, " ", 2)
		if len(sub) != 2 {
			return fmt.Errorf("usage: decide <insert|delete|replace> <tuple>")
		}
		op, err := r.parseOp(sub[0], sub[1])
		if err != nil {
			return err
		}
		ctx, cancel := r.ctx()
		defer cancel()
		d, err := r.sessNow().DecideCtx(ctx, op)
		if err != nil {
			return r.describeTimeout(err)
		}
		fmt.Fprintf(r.out, "decide   %s %s: translatable=%v (%s)\n", sub[0], sub[1], d.Translatable, d.Reason)
	case "insert", "delete", "replace":
		op, err := r.parseOp(cmd, rest)
		if err != nil {
			return err
		}
		if r.batch > 1 {
			r.pending = append(r.pending, bufferedOp{cmd: cmd, op: op})
			if len(r.pending) >= r.batch {
				r.flush()
			}
			return nil
		}
		ctx, cancel := r.ctx()
		defer cancel()
		var d *core.Decision
		switch {
		case r.multi != nil:
			d, err = r.multi.Apply(ctx, op)
		case r.pipe != nil:
			d, err = r.pipe.ApplyCtx(ctx, op)
		default:
			d, err = r.sess.ApplyCtx(ctx, op)
		}
		r.report(cmd, d, err)
		if err != nil && !errors.Is(err, core.ErrRejected) {
			return r.describeTimeout(err)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// report prints an applied or rejected update's outcome; other errors
// are the caller's to report.
func (r *runner) report(cmd string, d *core.Decision, err error) {
	switch {
	case errors.Is(err, core.ErrRejected):
		fmt.Fprintf(r.out, "%-8s rejected: %s\n", cmd, d.Reason)
	case err == nil:
		fmt.Fprintf(r.out, "%-8s ok (%s)\n", cmd, d.Reason)
	}
}

// flush applies the buffered updates as one group commit — through the
// pipeline when one is running, directly via the store's batch apply
// otherwise — and reports each outcome in submission order. Per-op
// failures (beyond ordinary rejections) no longer have their script
// line at hand, so they are reported here with the command text and
// counted toward the script's exit status.
func (r *runner) flush() {
	buffered := r.pending
	r.pending = nil
	if len(buffered) == 0 {
		return
	}
	// One timeout bounds the whole flush: the group shares its fate.
	ctx, cancel := r.ctx()
	defer cancel()
	if r.multi != nil {
		// Submit the window asynchronously so ops routed to the same
		// shard share its group commit; cross-shard ops resolve eagerly
		// inside ApplyAsync.
		waits := make([]serve.Waiter, len(buffered))
		for i, b := range buffered {
			w, err := r.multi.ApplyAsync(ctx, b.op)
			if err != nil {
				r.errs++
				fmt.Fprintf(r.out, "batch: %s: error: %v\n", b.cmd, r.describeTimeout(err))
				continue
			}
			waits[i] = w
		}
		for i, w := range waits {
			if w == nil {
				continue
			}
			d, err := w.Wait()
			r.report(buffered[i].cmd, d, err)
			if err != nil && !errors.Is(err, core.ErrRejected) {
				r.errs++
				fmt.Fprintf(r.out, "batch: %s: error: %v\n", buffered[i].cmd, r.describeTimeout(err))
			}
		}
		return
	}
	if r.pipe != nil {
		pends := make([]*serve.Pending, len(buffered))
		for i, b := range buffered {
			p, err := r.pipe.ApplyAsync(ctx, b.op)
			if err != nil {
				r.errs++
				fmt.Fprintf(r.out, "batch: %s: error: %v\n", b.cmd, r.describeTimeout(err))
				continue
			}
			pends[i] = p
		}
		for i, p := range pends {
			if p == nil {
				continue
			}
			d, err := p.Wait()
			r.report(buffered[i].cmd, d, err)
			if err != nil && !errors.Is(err, core.ErrRejected) {
				r.errs++
				fmt.Fprintf(r.out, "batch: %s: error: %v\n", buffered[i].cmd, r.describeTimeout(err))
			}
		}
		return
	}
	ops := make([]core.UpdateOp, len(buffered))
	for i, b := range buffered {
		ops[i] = b.op
	}
	items, err := r.st.ApplyBatchCtx(ctx, ops)
	for i, it := range items {
		r.report(buffered[i].cmd, it.Decision, it.Err)
		if it.Err != nil && !errors.Is(it.Err, core.ErrRejected) {
			r.errs++
			fmt.Fprintf(r.out, "batch: %s: error: %v\n", buffered[i].cmd, r.describeTimeout(it.Err))
		}
	}
	if err != nil {
		r.errs++
		fmt.Fprintf(r.out, "batch: error: %v\n", err)
	}
}

func (r *runner) describeTimeout(err error) error {
	if errors.Is(err, core.ErrBudgetExceeded) {
		return fmt.Errorf("decision timed out after %v: %w", r.timeout, err)
	}
	return err
}
