// Command viewupd runs a constant-complement view-update session against
// a universal-relation database: it loads a schema and an instance,
// fixes a view and a complement, and executes update commands, refusing
// untranslatable ones with the paper's diagnosis.
//
// Usage:
//
//	viewupd -schema schema.txt -data data.txt -view "E D" [-complement "D M"] [-script s.txt]
//
// Without -complement, the minimal complement of Corollary 2 is used.
// Commands (from -script or stdin), one per line:
//
//	insert  <v1> <v2> ...      insert a view tuple
//	delete  <v1> <v2> ...      delete a view tuple
//	replace <v1> ... / <w1>... replace one view tuple by another
//	decide  insert <v1> ...    test translatability without applying
//	show                       print the database
//	view                       print the view instance
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("viewupd: ")
	schemaPath := flag.String("schema", "", "path to the schema file (required)")
	dataPath := flag.String("data", "", "path to the instance file (required)")
	viewSpec := flag.String("view", "", "view attributes, e.g. \"E D\" (required)")
	compSpec := flag.String("complement", "", "complement attributes (default: minimal complement)")
	scriptPath := flag.String("script", "", "command script (default: stdin)")
	flag.Parse()
	if *schemaPath == "" || *dataPath == "" || *viewSpec == "" {
		flag.Usage()
		os.Exit(2)
	}

	schemaText, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := workload.ParseSchema(string(schemaText))
	if err != nil {
		log.Fatal(err)
	}
	syms := value.NewSymbols()
	dataText, err := os.ReadFile(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	db, err := workload.ParseData(schema, syms, string(dataText))
	if err != nil {
		log.Fatal(err)
	}
	if !db.Attrs().Equal(schema.Universe().All()) {
		log.Fatalf("instance must cover all of U = %v", schema.Universe().All())
	}
	if ok, bad := schema.Legal(db); !ok {
		log.Fatalf("instance violates %v", bad)
	}

	u := schema.Universe()
	x, err := u.ParseSet(*viewSpec)
	if err != nil {
		log.Fatal(err)
	}
	y := core.MinimalComplement(schema, x)
	if *compSpec != "" {
		if y, err = u.ParseSet(*compSpec); err != nil {
			log.Fatal(err)
		}
	}
	pair, err := core.NewPair(schema, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view X = %v, constant complement Y = %v\n", x, y)
	if good, err := pair.IsGoodComplement(); err == nil {
		fmt.Printf("good complement: %v\n", good)
	}

	var in io.Reader = os.Stdin
	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			break
		}
		db = execute(pair, db, syms, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

// execute runs one command against the database and returns the (possibly
// updated) database.
func execute(pair *core.Pair, db *relation.Relation, syms *value.Symbols, line string) *relation.Relation {
	view := db.Project(pair.ViewAttrs())
	fields := strings.SplitN(line, " ", 2)
	cmd := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = fields[1]
	}
	fail := func(err error) *relation.Relation {
		fmt.Printf("%-8s error: %v\n", cmd, err)
		return db
	}
	switch cmd {
	case "show":
		fmt.Print(db.Format(syms))
	case "view":
		fmt.Print(view.Format(syms))
	case "decide":
		sub := strings.SplitN(rest, " ", 2)
		if len(sub) != 2 || sub[0] != "insert" {
			return fail(fmt.Errorf("usage: decide insert <tuple>"))
		}
		t, err := workload.ParseTuple(view, syms, sub[1])
		if err != nil {
			return fail(err)
		}
		d, err := pair.DecideInsert(view, t)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("decide   insert %s: translatable=%v (%s)\n", sub[1], d.Translatable, d.Reason)
	case "insert":
		t, err := workload.ParseTuple(view, syms, rest)
		if err != nil {
			return fail(err)
		}
		d, err := pair.DecideInsert(view, t)
		if err != nil {
			return fail(err)
		}
		if !d.Translatable {
			fmt.Printf("insert   rejected: %s\n", d.Reason)
			return db
		}
		out, err := pair.ApplyInsert(db, t)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("insert   ok (%s)\n", d.Reason)
		return out
	case "delete":
		t, err := workload.ParseTuple(view, syms, rest)
		if err != nil {
			return fail(err)
		}
		d, err := pair.DecideDelete(view, t)
		if err != nil {
			return fail(err)
		}
		if !d.Translatable {
			fmt.Printf("delete   rejected: %s\n", d.Reason)
			return db
		}
		out, err := pair.ApplyDelete(db, t)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("delete   ok (%s)\n", d.Reason)
		return out
	case "replace":
		parts := strings.SplitN(rest, "/", 2)
		if len(parts) != 2 {
			return fail(fmt.Errorf("usage: replace <tuple> / <tuple>"))
		}
		t1, err := workload.ParseTuple(view, syms, strings.TrimSpace(parts[0]))
		if err != nil {
			return fail(err)
		}
		t2, err := workload.ParseTuple(view, syms, strings.TrimSpace(parts[1]))
		if err != nil {
			return fail(err)
		}
		d, err := pair.DecideReplace(view, t1, t2)
		if err != nil {
			return fail(err)
		}
		if !d.Translatable {
			fmt.Printf("replace  rejected: %s\n", d.Reason)
			return db
		}
		out, err := pair.ApplyReplace(db, t1, t2)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("replace  ok (%s)\n", d.Reason)
		return out
	default:
		return fail(fmt.Errorf("unknown command %q", cmd))
	}
	return db
}
