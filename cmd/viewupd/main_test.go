package main

import (
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// fixture builds the EDM pair and database used by the command tests.
func fixture(t *testing.T) (*core.Pair, *relation.Relation, *value.Symbols) {
	t.Helper()
	schema, err := workload.ParseSchema("attrs: E D M\nE -> D\nD -> M\n")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	db, err := workload.ParseData(schema, syms, `
E D M
ed toys mo
flo toys mo
bob tools tim
`)
	if err != nil {
		t.Fatal(err)
	}
	u := schema.Universe()
	pair, err := core.NewPair(schema, u.MustSet("E", "D"), u.MustSet("D", "M"))
	if err != nil {
		t.Fatal(err)
	}
	return pair, db, syms
}

func TestExecuteInsertDeleteReplace(t *testing.T) {
	pair, db, syms := fixture(t)
	db = execute(pair, db, syms, "insert ann toys")
	if !db.Project(pair.ViewAttrs()).Contains(relation.Tuple{syms.Const("ann"), syms.Const("toys")}) {
		t.Fatal("insert not applied")
	}
	db = execute(pair, db, syms, "delete ed toys")
	if db.Project(pair.ViewAttrs()).Contains(relation.Tuple{syms.Const("ed"), syms.Const("toys")}) {
		t.Fatal("delete not applied")
	}
	db = execute(pair, db, syms, "replace ann toys / ann tools")
	if !db.Project(pair.ViewAttrs()).Contains(relation.Tuple{syms.Const("ann"), syms.Const("tools")}) {
		t.Fatal("replace not applied")
	}
}

func TestExecuteRejectionsKeepDatabase(t *testing.T) {
	pair, db, syms := fixture(t)
	before := db.Clone()
	for _, cmd := range []string{
		"insert zoe plants",     // condition (a)
		"delete bob tools",      // last sharer
		"insert onlyone",        // arity error
		"replace ed toys",       // missing separator
		"replace ed toys / ed",  // arity error
		"frobnicate ed toys",    // unknown command
		"decide insert",         // malformed decide
		"decide delete ed toys", // unsupported decide target
	} {
		db = execute(pair, db, syms, cmd)
	}
	if !db.Equal(before) {
		t.Error("rejected/erroneous commands mutated the database")
	}
}

func TestExecuteDecideAndShow(t *testing.T) {
	pair, db, syms := fixture(t)
	before := db.Clone()
	db = execute(pair, db, syms, "decide insert ann toys")
	db = execute(pair, db, syms, "show")
	db = execute(pair, db, syms, "view")
	if !db.Equal(before) {
		t.Error("read-only commands mutated the database")
	}
}

func TestScriptEndToEnd(t *testing.T) {
	pair, db, syms := fixture(t)
	script := `
# a session
insert ann toys
delete flo toys
replace ann toys / ann tools
`
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		db = execute(pair, db, syms, line)
	}
	v := db.Project(pair.ViewAttrs())
	if v.Len() != 3 {
		t.Fatalf("view has %d tuples, want 3", v.Len())
	}
	// Complement constant across the whole script.
	if !db.Project(pair.ComplementAttrs()).Equal(db.Project(pair.ComplementAttrs())) {
		t.Error("complement drifted")
	}
}
