package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// fixture builds the EDM pair and database used by the command tests.
func fixture(t *testing.T) (*core.Pair, *relation.Relation, *value.Symbols) {
	t.Helper()
	schema, err := workload.ParseSchema("attrs: E D M\nE -> D\nD -> M\n")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	db, err := workload.ParseData(schema, syms, `
E D M
ed toys mo
flo toys mo
bob tools tim
`)
	if err != nil {
		t.Fatal(err)
	}
	u := schema.Universe()
	pair, err := core.NewPair(schema, u.MustSet("E", "D"), u.MustSet("D", "M"))
	if err != nil {
		t.Fatal(err)
	}
	return pair, db, syms
}

// newRunner wraps the fixture in an in-memory session runner capturing
// output.
func newRunner(t *testing.T) (*runner, *bytes.Buffer) {
	t.Helper()
	pair, db, syms := fixture(t)
	sess, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return &runner{sess: sess, syms: syms, out: &out}, &out
}

func viewHas(r *runner, vals ...string) bool {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = r.syms.Const(v)
	}
	return r.sess.View().Contains(t)
}

func TestExecuteInsertDeleteReplace(t *testing.T) {
	r, _ := newRunner(t)
	for _, cmd := range []string{
		"insert ann toys",
		"delete ed toys",
		"replace ann toys / ann tools",
	} {
		if err := r.execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if !viewHas(r, "ann", "tools") {
		t.Error("replace not applied")
	}
	if viewHas(r, "ed", "toys") {
		t.Error("delete not applied")
	}
}

func TestExecuteRejectionsAndErrorsKeepDatabase(t *testing.T) {
	r, _ := newRunner(t)
	before := r.sess.Database()
	// Untranslatable updates are normal outcomes: no error, no change.
	for _, cmd := range []string{
		"insert zoe plants", // condition (a)
		"delete bob tools",  // last sharer
	} {
		if err := r.execute(cmd); err != nil {
			t.Errorf("%q: rejection surfaced as error: %v", cmd, err)
		}
	}
	// Malformed commands are errors: reported, skipped, no change.
	for _, cmd := range []string{
		"insert onlyone",       // arity error
		"insert",               // empty tuple
		"replace ed toys",      // missing separator
		"replace ed toys / ed", // arity error
		"frobnicate ed toys",   // unknown command
		"decide insert",        // malformed decide
		"decide launch ed",     // unknown decide target
	} {
		if err := r.execute(cmd); err == nil {
			t.Errorf("%q: no error", cmd)
		}
	}
	if !r.sess.Database().Equal(before) {
		t.Error("rejected/erroneous commands mutated the database")
	}
}

// TestIncrementalFlagEquivalence runs the same script with the
// incremental path on (the -incremental default) and off
// (-incremental=false) and requires byte-identical output and final
// state — the user-visible contract of the flag.
func TestIncrementalFlagEquivalence(t *testing.T) {
	script := []string{
		"insert ann toys",
		"decide insert zoe plants", // condition (a) rejection
		"delete ed toys",
		"replace ann toys / ann tools",
		"delete bob tools", // last sharer: rejected
		"view",
		"show",
	}
	// One fixture (one symbol table) for both runs so the final
	// databases are comparable value-for-value.
	pair, db, syms := fixture(t)
	run := func(incremental bool) (string, *relation.Relation) {
		sess, err := core.NewSession(pair, db)
		if err != nil {
			t.Fatal(err)
		}
		sess.SetIncremental(incremental)
		var out bytes.Buffer
		r := &runner{sess: sess, syms: syms, out: &out}
		for _, cmd := range script {
			if err := r.execute(cmd); err != nil {
				t.Fatalf("incremental=%v %q: %v", incremental, cmd, err)
			}
		}
		return out.String(), r.sess.Database()
	}
	incOut, incDB := run(true)
	fullOut, fullDB := run(false)
	if incOut != fullOut {
		t.Errorf("outputs differ:\nincremental:\n%s\nfull:\n%s", incOut, fullOut)
	}
	if !incDB.Equal(fullDB) {
		t.Error("final databases differ")
	}
}

func TestExecuteDecideAllKindsAndShow(t *testing.T) {
	r, out := newRunner(t)
	before := r.sess.Database()
	for _, cmd := range []string{
		"decide insert ann toys",
		"decide delete ed toys",
		"decide replace ed toys / ed tools",
		"show",
		"view",
	} {
		if err := r.execute(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if !r.sess.Database().Equal(before) {
		t.Error("read-only commands mutated the database")
	}
	if got := out.String(); strings.Count(got, "translatable=") != 3 {
		t.Errorf("decide output missing verdicts:\n%s", got)
	}
}

// TestScriptBadLineInMiddle is the satellite acceptance case: a
// malformed command mid-script is reported with its line number and
// skipped, the rest of the script still runs, and the summary error
// makes scripted mode exit non-zero.
func TestScriptBadLineInMiddle(t *testing.T) {
	r, out := newRunner(t)
	script := `# header comment
insert ann toys
insert bogus
delete ed toys
insert zed tools
`
	err := runScript(r, strings.NewReader(script))
	if err == nil {
		t.Fatal("script with a bad line reported success")
	}
	if !strings.Contains(err.Error(), "1 command(s) failed") {
		t.Errorf("summary error = %v", err)
	}
	if !strings.Contains(out.String(), "line 3: error:") {
		t.Errorf("bad line not reported with its number:\n%s", out.String())
	}
	// Commands after the bad line still ran.
	if !viewHas(r, "zed", "tools") || viewHas(r, "ed", "toys") || !viewHas(r, "ann", "toys") {
		t.Errorf("commands around the bad line did not run;\n%s", out.String())
	}
}

func TestScriptQuitStopsEarly(t *testing.T) {
	r, _ := newRunner(t)
	script := "insert ann toys\nquit\ninsert zed tools\n"
	if err := runScript(r, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if viewHas(r, "zed", "tools") {
		t.Error("commands after quit ran")
	}
}

// TestRunnerOverDurableSession drives the same command loop over a
// store.Session and checks a recovery sees the scripted updates.
func TestRunnerOverDurableSession(t *testing.T) {
	pair, db, syms := fixture(t)
	mem := store.NewMemFS()
	st, err := store.Create(mem, pair, db, syms, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := &runner{sess: st, syms: syms, out: &bytes.Buffer{}}
	script := "insert ann toys\ndelete ed toys\n"
	if err := runScript(r, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	mem.Crash() // journaled ops are fsynced; nothing should be lost
	syms2 := value.NewSymbols()
	rec, rep, err := store.Recover(mem, pair, syms2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotSeq+uint64(rep.Replayed) != 2 || !rep.InvariantOK {
		t.Errorf("recovery report %+v", rep)
	}
	v := rec.View()
	if !v.Contains(relation.Tuple{syms2.Const("ann"), syms2.Const("toys")}) {
		t.Error("recovered session lost a scripted insert")
	}
}

// TestScriptBatchMode groups consecutive updates into shared journal
// fsyncs: a 5-update script at -batch 4 costs 2 journal batches (one
// full, one flushed at end of script), not 5, and a rejection inside a
// batch is reported without failing the script. The mid-script `view`
// command must observe every buffered update (flush-before-read).
func TestScriptBatchMode(t *testing.T) {
	reg := obs.NewRegistry()
	store.SetMetrics(reg)
	defer store.SetMetrics(nil)

	pair, db, syms := fixture(t)
	mem := store.NewMemFS()
	st, err := store.Create(mem, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := &runner{sess: st, syms: syms, out: &out, batch: 4, st: st}
	// Within the first batch, the delete is still a last-sharer rejection
	// because it precedes the insert that would have given bob company.
	script := `insert ann toys
delete bob tools
insert zed tools
insert kim toys
view
insert pat tools
`
	if err := runScript(r, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if !viewHas(r, "ann", "toys") || !viewHas(r, "zed", "tools") || !viewHas(r, "pat", "tools") {
		t.Errorf("batched updates missing from the view:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "rejected") {
		t.Errorf("in-batch rejection not reported:\n%s", out.String())
	}
	// `view` printed after the first flush must include the batched rows.
	if !strings.Contains(out.String(), "ann") {
		t.Errorf("view output missing buffered update:\n%s", out.String())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["store_journal_batches_total"]; got != 2 {
		t.Errorf("store_journal_batches_total = %d, want 2 (4 updates + 1 after flush)", got)
	}
	if got := snap.Counters["store_journal_records_total"]; got != 4 {
		t.Errorf("store_journal_records_total = %d, want 4 applied (3 + 1; the delete is rejected)", got)
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, _, err := store.Recover(mem, pair, syms2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.View().Contains(relation.Tuple{syms2.Const("pat"), syms2.Const("tools")}) {
		t.Error("end-of-script flush was not durable")
	}
}

// TestScriptShardedMode drives the command loop through a sharded
// multi-store: batched updates route to their owning shards, `view`
// prints the union, `show`/`decide` are refused, and the applied
// updates survive a crash of every shard.
func TestScriptShardedMode(t *testing.T) {
	const k = 3
	pair, db, syms := fixture(t)
	mem := store.NewMemFS()
	fss := make([]store.FS, k)
	for i := range fss {
		fss[i] = shard.SubFS(mem, "s"+string(rune('0'+i))+"/")
	}
	m, _, err := shard.Open(fss, pair, db, syms, shard.Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	// Inserts are only translatable on shards already hosting the
	// department, so pick fresh names that route there: toys lives on
	// ed's and flo's shards, tools on bob's.
	router := m.Router()
	pick := func(prefix string, shards ...int) string {
		for i := 0; i < 10000; i++ {
			name := prefix + string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('a'+i/260))
			for _, s := range shards {
				if router.ShardOfName(name) == s {
					return name
				}
			}
		}
		t.Fatalf("no %s name routing to shards %v", prefix, shards)
		return ""
	}
	toyShards := []int{router.ShardOfName("ed"), router.ShardOfName("flo")}
	toolShard := []int{router.ShardOfName("bob")}
	ann, zed, pat := pick("ann", toyShards...), pick("zed", toolShard...), pick("pat", toolShard...)

	var out bytes.Buffer
	r := &runner{syms: syms, out: &out, batch: 4, multi: m}
	script := "insert " + ann + " toys\n" +
		"insert " + zed + " tools\n" +
		"view\nshow\ndecide insert kim toys\n" +
		"insert " + pat + " tools\n"
	err = runScript(r, strings.NewReader(script))
	if err == nil || !strings.Contains(err.Error(), "2 command(s) failed") {
		t.Fatalf("show/decide should fail under -shards, got %v:\n%s", err, out.String())
	}
	for _, want := range []string{"not supported with -shards", ann, zed} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	mem.Crash()
	pair2, db2, syms2 := fixture(t)
	fss2 := make([]store.FS, k)
	for i := range fss2 {
		fss2[i] = shard.SubFS(mem, "s"+string(rune('0'+i))+"/")
	}
	m2, _, err := shard.Open(fss2, pair2, db2, syms2, shard.Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	v, _, _ := m2.Published()
	for _, emp := range []string{ann, zed, pat} {
		c, ok := syms2.Lookup(emp)
		found := ok
		if ok {
			found = false
			for _, tup := range v.Tuples() {
				if tup[0] == c {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("applied insert %s missing after sharded recovery:\n%s", emp, v.Format(syms2))
		}
	}
}

// TestScriptPipelineMode drives the same command loop through the
// serving pipeline and checks updates land durably in order.
func TestScriptPipelineMode(t *testing.T) {
	pair, db, syms := fixture(t)
	mem := store.NewMemFS()
	st, err := store.Create(mem, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := serve.New(st, serve.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := &runner{sess: st, syms: syms, out: &out, batch: 4, st: st, pipe: pipe}
	script := "insert ann toys\ninsert zed tools\ndelete ed toys\nshow\n"
	if err := runScript(r, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if !viewHas(r, "ann", "toys") || viewHas(r, "ed", "toys") {
		t.Errorf("pipelined updates not applied:\n%s", out.String())
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, _, err := store.Recover(mem, pair, syms2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.View().Contains(relation.Tuple{syms2.Const("zed"), syms2.Const("tools")}) {
		t.Error("pipelined update lost after crash")
	}
	// Unbatched pipeline submissions (batch == 1) go through the
	// synchronous path.
	st2, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipe2, err := serve.New(st2, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := &runner{sess: st2, syms: syms, out: &bytes.Buffer{}, batch: 1, st: st2, pipe: pipe2}
	if err := runScript(r2, strings.NewReader("insert ann toys\n")); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScriptPipelineResurrection wires the -pipeline self-healing path
// exactly the way main does: a journal fsync fault breaks the first
// session mid-script, the pipeline resurrects a fresh one by
// re-running recovery off the same filesystem, and every scripted
// update still lands durably — the script reports zero failures.
func TestScriptPipelineResurrection(t *testing.T) {
	pair, db, syms := fixture(t)
	mem := store.NewMemFS()
	fsys := store.NewFaultFS(mem, store.FaultPlan{
		Match:      func(name string) bool { return name == store.JournalFile },
		FailSyncAt: 2,
	})
	st, err := store.Create(fsys, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := serve.New(st, serve.Options{
		MaxBatch: 2,
		Resurrect: func() (*store.Session, error) {
			ns, _, err := store.Recover(mem, pair, syms, store.Options{})
			if err != nil {
				return nil, err
			}
			return ns, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := &runner{sess: st, syms: syms, out: &out, batch: 2, st: st, pipe: pipe}
	script := "insert ann toys\ninsert zed tools\ninsert kim toys\ninsert pat tools\nshow\n"
	if err := runScript(r, strings.NewReader(script)); err != nil {
		t.Fatalf("script failed despite self-healing: %v\n%s", err, out.String())
	}
	if pipe.Store() == st {
		t.Fatal("sync fault never fired: pipeline still on the original session")
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	// The post-resurrection `show` must reflect the healed session.
	if !strings.Contains(out.String(), "pat") {
		t.Errorf("show after resurrection missing batched update:\n%s", out.String())
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, _, err := store.Recover(mem, pair, syms2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range [][2]string{{"ann", "toys"}, {"zed", "tools"}, {"kim", "toys"}, {"pat", "tools"}} {
		if !rec.View().Contains(relation.Tuple{syms2.Const(want[0]), syms2.Const(want[1])}) {
			t.Errorf("update %v lost across resurrection + crash", want)
		}
	}
}

// TestRunnerTimeout: with an already-expired budget every update
// command fails as a timeout error (and is skipped) instead of
// hanging or crashing the session.
func TestRunnerTimeout(t *testing.T) {
	r, out := newRunner(t)
	r.timeout = time.Nanosecond
	before := r.sess.Database()
	err := runScript(r, strings.NewReader("insert ann toys\n"))
	if err == nil {
		t.Fatal("timed-out command not counted as failed")
	}
	if !strings.Contains(out.String(), "timed out") {
		t.Errorf("timeout not reported:\n%s", out.String())
	}
	if !r.sess.Database().Equal(before) {
		t.Error("timed-out command mutated the database")
	}
}

// TestMetricsReport runs a script with every subsystem instrumented and
// checks the report lands on disk in both formats, covering core
// decide/apply and the relational kernels underneath.
func TestMetricsReport(t *testing.T) {
	reg := obs.NewRegistry()
	relation.SetMetrics(reg)
	core.SetMetrics(reg)
	defer relation.SetMetrics(nil)
	defer core.SetMetrics(nil)

	r, _ := newRunner(t)
	if err := runScript(r, strings.NewReader("insert ann toys\ndelete ed toys\n")); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	if err := writeMetricsReport(reg, jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if snap.Counters["core_decide_total"] != 2 {
		t.Errorf("core_decide_total = %d, want 2", snap.Counters["core_decide_total"])
	}
	if snap.Counters["core_apply_applied_total"] != 2 {
		t.Errorf("core_apply_applied_total = %d, want 2", snap.Counters["core_apply_applied_total"])
	}
	if snap.Counters["relation_project_calls_total"] == 0 {
		t.Error("relation kernels not instrumented through the session")
	}

	promPath := filepath.Join(dir, "report.prom")
	if err := writeMetricsReport(reg, promPath); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE core_decide_total counter") {
		t.Errorf("prometheus report missing counter type line:\n%s", prom)
	}
}
