// Command viewsrv serves constant-complement views over HTTP: one
// self-healing serve pipeline per named view, fronted by the
// internal/netserve protocol (JSON control plane, binary-framed hot
// submit path, per-tenant admission control, degraded-read headers).
//
// Usage:
//
//	viewsrv -journal dir [-addr 127.0.0.1:8085] [-portfile p] [-views ed,dm]
//	        [-emp 64] [-dept 8] [-failsync n] [-max-batch 32] [-shed]
//	        [-slots 16] [-rate 0] [-burst 0] [-tenants "hog=1,good=4"]
//	        [-conn-budget 0] [-max-tenants 64] [-shards 1]
//
// The schema is the paper's Employee–Department–Manager fixture
// (U = {E, D, M}, Σ = {E → D, D → M}); view "ed" is X = ED with
// constant complement Y = DM, view "dm" is the symmetric pair. Each
// view journals under <journal>/<name> via store.Open, so restarting
// against the same directory recovers every acknowledged update, and
// the pipelines resurrect themselves from those directories when a
// storage fault breaks a session mid-run.
//
// -failsync n injects one fsync failure at the nth journal sync of the
// first view — the smoke test's resurrection trigger: the pipeline
// quarantines the broken session, re-runs recovery against the same
// directory, and resumes without losing an acknowledged op.
//
// -shards K > 1 serves the "ed" view from a hash-partitioned
// multi-store instead of a single pipeline: K independent shards under
// <journal>/ed/s0 … s<K-1>, each with its own journal, snapshot, and
// group-commit pipeline, fronted by the static placement ring
// (internal/shard). Single-shard ops ride each shard's fast path;
// replacements that move a key between shards run the two-phase
// cross-shard commit. With -failsync, the fault is injected into shard
// 0's journal only, so the smoke test can check that resurrection is
// confined to that shard.
//
// -portfile writes the bound address (host:port) after listen, so
// scripts using -addr with port 0 can find the server. /metricz (JSON)
// and /metricz.prom expose every subsystem's counters and latency
// histograms; SIGINT/SIGTERM drain the pipelines before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/netserve"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("viewsrv: ")
	addr := flag.String("addr", "127.0.0.1:8085", "listen address (port 0 picks a free port; see -portfile)")
	portFile := flag.String("portfile", "", "write the bound host:port here once listening")
	journalDir := flag.String("journal", "", "root directory for per-view journals (required)")
	views := flag.String("views", "ed,dm", "comma-separated views to serve (ed, dm)")
	nEmp := flag.Int("emp", 64, "employees in the initial instance")
	nDept := flag.Int("dept", 8, "departments in the initial instance")
	failSync := flag.Int("failsync", 0, "inject one fsync failure at the nth journal sync of the first view (0 = none)")
	maxBatch := flag.Int("max-batch", 32, "ops per group commit")
	shed := flag.Bool("shed", true, "shed submissions instead of blocking when the queue is full")
	slots := flag.Int("slots", 16, "concurrent admitted submissions")
	rate := flag.Float64("rate", 0, "default per-tenant sustained ops/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "default per-tenant burst in ops (0 = one second's worth)")
	tenantSpec := flag.String("tenants", "", "per-tenant weights, e.g. \"hog=1,good=4\"")
	connBudget := flag.Int64("conn-budget", 0, "ops one connection may submit before it must re-dial (0 = unlimited)")
	maxTenants := flag.Int("max-tenants", 64, "bound on the tenant admission table")
	shards := flag.Int("shards", 1, "hash-partition the ed view across K shards (K > 1 restricts -views to ed)")
	flag.Parse()
	if *journalDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Instrument every layer a request can touch; /metricz serves the
	// registry live.
	reg := obs.NewRegistry()
	relation.SetMetrics(reg)
	core.SetMetrics(reg)
	store.SetMetrics(reg)
	serve.SetMetrics(reg)
	netserve.SetMetrics(reg)

	edm := workload.NewEDM()
	db := edm.Instance(*nEmp, *nDept)

	srv := netserve.NewServer(netserve.Options{
		Admission: netserve.AdmissionOptions{
			Slots:      *slots,
			MaxTenants: *maxTenants,
			Default:    netserve.TenantConfig{Rate: *rate, Burst: *burst},
			Tenants:    tenants,
		},
		ConnOpBudget: *connBudget,
		Registry:     reg,
	})

	if *shards > 1 {
		if err := addShardedView(srv, edm, db, *journalDir, *views, *shards, *failSync, *maxBatch, *shed); err != nil {
			log.Fatal(err)
		}
	} else {
		addPipelineViews(srv, edm, db, *journalDir, *views, *failSync, *maxBatch, *shed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("serving on %s", ln.Addr())

	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Connection-scoped budgets ride on the request context.
		ConnContext: srv.ConnContext,
	}
	// Drain on SIGINT/SIGTERM: stop accepting, let in-flight requests
	// finish (bounded), then close the pipelines so every accepted op
	// is decided and durable before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	})

	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// addShardedView opens the ed view as a K-shard multi-store under
// <journalDir>/ed/s<k> and registers it. With failSync > 0 the one-shot
// fsync fault lands on shard 0's journal only, so resurrection must be
// confined to that shard.
func addShardedView(srv *netserve.Server, edm *workload.EDM, db *relation.Relation,
	journalDir, views string, shards, failSync, maxBatch int, shed bool) error {
	for _, name := range strings.Split(views, ",") {
		if name = strings.TrimSpace(name); name != "" && name != "ed" {
			return fmt.Errorf("-shards serves only the ed view (its key attribute E routes ops); got view %q", name)
		}
	}
	pair, err := core.NewPair(edm.Schema, edm.ED, edm.DM)
	if err != nil {
		return err
	}
	fss := make([]store.FS, shards)
	for k := range fss {
		dir := filepath.Join(journalDir, "ed", fmt.Sprintf("s%d", k))
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return err
		}
		dirFS, err := store.NewDirFS(dir)
		if err != nil {
			return err
		}
		fss[k] = dirFS
		if k == 0 && failSync > 0 {
			fss[k] = store.NewFaultFS(dirFS, store.FaultPlan{
				Match:      func(fname string) bool { return fname == store.JournalFile },
				FailSyncAt: failSync,
			})
		}
	}
	m, rep, err := shard.Open(fss, pair, db.Clone(), edm.Syms, shard.Options{
		Shards: shards,
		Serve:  serve.Options{MaxBatch: maxBatch, ShedOnFull: shed},
	})
	if err != nil {
		return err
	}
	for k, r := range rep.Shards {
		if r != nil {
			log.Printf("view ed shard %d: %v", k, r)
		}
	}
	for _, r := range rep.Resolved {
		log.Printf("view ed: resolved in-doubt xid %d committed=%v", r.Xid, r.Committed)
	}
	return srv.AddSharded("ed", m, edm.Syms)
}

// addPipelineViews opens each named view as a single self-healing
// pipeline under <journalDir>/<name> and registers it.
func addPipelineViews(srv *netserve.Server, edm *workload.EDM, db *relation.Relation,
	journalDir, views string, failSync, maxBatch int, shed bool) {
	for i, name := range strings.Split(views, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var x, y = edm.ED, edm.DM
		switch name {
		case "ed":
		case "dm":
			x, y = edm.DM, edm.ED
		default:
			log.Fatalf("unknown view %q (want ed or dm)", name)
		}
		pair, err := core.NewPair(edm.Schema, x, y)
		if err != nil {
			log.Fatal(err)
		}
		dir := filepath.Join(journalDir, name)
		if err := os.MkdirAll(dir, 0o777); err != nil {
			log.Fatal(err)
		}
		dirFS, err := store.NewDirFS(dir)
		if err != nil {
			log.Fatal(err)
		}
		// The view's FS: the first view optionally gets the one-shot
		// fsync fault that triggers an online resurrection.
		var fsys store.FS = dirFS
		if i == 0 && failSync > 0 {
			fsys = store.NewFaultFS(dirFS, store.FaultPlan{FailSyncAt: failSync})
		}
		// Each view gets its own copy of the initial instance: sessions
		// maintain their databases independently (the incremental path
		// patches in place), so they must not alias one relation.
		st, rep, err := store.Open(fsys, pair, db.Clone(), edm.Syms, store.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if rep != nil {
			log.Printf("view %s: %v", name, rep)
		}
		err = srv.AddView(name, st, edm.Syms, serve.Options{
			MaxBatch:   maxBatch,
			ShedOnFull: shed,
			// Self-healing: a broken session is quarantined and a fresh
			// one recovered from the same journal directory, online.
			Resurrect: func() (*store.Session, error) {
				ns, _, err := store.Recover(fsys, pair, edm.Syms, store.Options{})
				return ns, err
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}

// parseTenants parses "name=weight[:rate[:burst]]" pairs.
func parseTenants(spec string) (map[string]netserve.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]netserve.TenantConfig)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant spec %q (want name=weight[:rate[:burst]])", part)
		}
		var cfg netserve.TenantConfig
		fields := strings.Split(rest, ":")
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("bad tenant spec %q: %w", part, err)
			}
			vals[i] = v
		}
		switch len(vals) {
		case 3:
			cfg.Burst = vals[2]
			fallthrough
		case 2:
			cfg.Rate = vals[1]
			fallthrough
		case 1:
			cfg.Weight = vals[0]
		default:
			return nil, fmt.Errorf("bad tenant spec %q", part)
		}
		out[name] = cfg
	}
	return out, nil
}
