// Command chaos sweeps seed-reproducible fault schedules through the
// self-healing serve pipeline (internal/chaos) and exits non-zero on
// any invariant violation: an acknowledged op lost after a power cut,
// or a final state that diverges from a serial fault-free oracle.
//
// Usage:
//
//	chaos [-seeds N] [-seed S] [-ops N] [-v]
//
// With -seed the runner executes that single generated schedule;
// otherwise it runs six canonical per-kind schedules (one per fault
// kind, each required to trigger its recovery path) followed by a
// sweep of -seeds generated schedules. When a schedule fails, the
// runner minimizes it with chaos.Minimize — re-running the pipeline as
// the failure predicate — and prints the reduced schedule as JSON, so
// the repro can be pasted straight into a regression test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/constcomp/constcomp/internal/chaos"
	"github.com/constcomp/constcomp/internal/obs"
)

// config is the runner's parsed flag set, split out so tests can drive
// run without the global flag state.
type config struct {
	seeds   int
	seed    uint64
	ops     int
	verbose bool
}

// canonical returns one hand-written schedule per fault kind; each
// must provably drive its recovery path (checked in run).
func canonical(ops int) []chaos.Schedule {
	return []chaos.Schedule{
		{Seed: 101, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.WriteFault, At: 2}}},
		{Seed: 102, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.SyncFault, At: 2}}},
		{Seed: 103, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.TornWrite, At: 2, Keep: 7}}},
		{Seed: 104, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.PowerLoss, At: 2}}},
		{Seed: 105, Ops: ops, BudgetTrips: []int{1, 4}},
		{Seed: 106, Ops: ops, QueueSat: true,
			Storage: []chaos.StorageFault{{Kind: chaos.SyncFault, At: 1}}},
	}
}

func run(cfg config, out, errw io.Writer) int {
	var schedules []chaos.Schedule
	if cfg.seed != 0 {
		schedules = []chaos.Schedule{chaos.Generate(cfg.seed, cfg.ops)}
	} else {
		schedules = canonical(cfg.ops)
		for s := uint64(1); s <= uint64(cfg.seeds); s++ {
			schedules = append(schedules, chaos.Generate(s, cfg.ops))
		}
	}

	start := obs.NowNS()
	var resurrections, retries int64
	var acked, rejected, shed int
	for i, s := range schedules {
		rep, err := chaos.Run(s)
		if err != nil {
			fmt.Fprintf(errw, "chaos: schedule %d could not run: %v\n", i, err)
			return 2
		}
		if rep.Violation != "" {
			fmt.Fprintf(errw, "chaos: schedule %d VIOLATION: %s\n", i, rep.Violation)
			min := chaos.Minimize(s, func(c chaos.Schedule) bool {
				r, err := chaos.Run(c)
				return err == nil && r.Violation != ""
			}, 12)
			js, _ := json.MarshalIndent(min, "", "  ")
			fmt.Fprintf(errw, "chaos: minimized repro schedule:\n%s\n", js)
			return 1
		}
		if cfg.verbose {
			fmt.Fprintf(out,
				"schedule %3d seed=%-4d acked=%-3d rejected=%-3d shed=%-3d resurrections=%d retries=%d\n",
				i, s.Seed, rep.Acked, rep.Rejected, rep.Shed, rep.Resurrections, rep.Retries)
		}
		resurrections += rep.Resurrections
		retries += rep.Retries
		acked += rep.Acked
		rejected += rep.Rejected
		shed += rep.Shed
	}
	elapsedMS := (obs.NowNS() - start) / 1e6

	fmt.Fprintf(out,
		"chaos: %d schedules ok in %dms: %d acked, %d rejected, %d shed, %d resurrections, %d retries\n",
		len(schedules), elapsedMS, acked, rejected, shed, resurrections, retries)
	if cfg.seed == 0 {
		// The canonical set guarantees at least one resurrection and one
		// shed; an all-green sweep without them means the harness stopped
		// exercising the heal and admission paths.
		if resurrections == 0 {
			fmt.Fprintln(errw, "chaos: sweep drove zero resurrections — heal path never fired")
			return 1
		}
		if shed == 0 {
			fmt.Fprintln(errw, "chaos: sweep drove zero sheds — bounded admission never fired")
			return 1
		}
	}
	return 0
}

func main() {
	seeds := flag.Int("seeds", 100, "number of generated schedules to sweep")
	seed := flag.Uint64("seed", 0, "run only the schedule generated from this seed")
	ops := flag.Int("ops", 40, "workload ops per schedule")
	verbose := flag.Bool("v", false, "print a line per schedule")
	flag.Parse()
	os.Exit(run(config{seeds: *seeds, seed: *seed, ops: *ops, verbose: *verbose},
		os.Stdout, os.Stderr))
}
