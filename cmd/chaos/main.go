// Command chaos sweeps seed-reproducible fault schedules through the
// self-healing serve pipeline (internal/chaos) and exits non-zero on
// any invariant violation: an acknowledged op lost after a power cut,
// or a final state that diverges from a serial fault-free oracle.
//
// Usage:
//
//	chaos [-seeds N] [-seed S] [-ops N] [-shards K] [-v]
//
// With -seed the runner executes that single generated schedule;
// otherwise it runs six canonical per-kind schedules (one per fault
// kind, each required to trigger its recovery path) followed by a
// sweep of -seeds generated schedules. When a schedule fails, the
// runner minimizes it with chaos.Minimize — re-running the pipeline as
// the failure predicate — and prints the reduced schedule as JSON, so
// the repro can be pasted straight into a regression test.
//
// With -shards K > 1 the runner sweeps the sharded multi-store
// instead: per-shard fault plans, scripted mid-two-phase power cuts,
// and a final whole-machine crash, each schedule checked for zero
// acked-op loss per shard and a recovered union state byte-identical
// to a serial oracle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/constcomp/constcomp/internal/chaos"
	"github.com/constcomp/constcomp/internal/obs"
)

// config is the runner's parsed flag set, split out so tests can drive
// run without the global flag state.
type config struct {
	seeds   int
	seed    uint64
	ops     int
	shards  int
	verbose bool
}

// canonical returns one hand-written schedule per fault kind; each
// must provably drive its recovery path (checked in run).
func canonical(ops int) []chaos.Schedule {
	return []chaos.Schedule{
		{Seed: 101, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.WriteFault, At: 2}}},
		{Seed: 102, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.SyncFault, At: 2}}},
		{Seed: 103, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.TornWrite, At: 2, Keep: 7}}},
		{Seed: 104, Ops: ops, Storage: []chaos.StorageFault{{Kind: chaos.PowerLoss, At: 2}}},
		{Seed: 105, Ops: ops, BudgetTrips: []int{1, 4}},
		{Seed: 106, Ops: ops, QueueSat: true,
			Storage: []chaos.StorageFault{{Kind: chaos.SyncFault, At: 1}}},
	}
}

// runSharded sweeps generated sharded schedules through
// chaos.RunSharded, printing a failing schedule as JSON so the repro
// can be replayed with -seed -shards.
func runSharded(cfg config, out, errw io.Writer) int {
	var schedules []chaos.ShardSchedule
	if cfg.seed != 0 {
		schedules = []chaos.ShardSchedule{chaos.GenerateSharded(cfg.seed, cfg.ops, cfg.shards)}
	} else {
		for s := uint64(1); s <= uint64(cfg.seeds); s++ {
			schedules = append(schedules, chaos.GenerateSharded(s, cfg.ops, cfg.shards))
		}
	}

	start := obs.NowNS()
	var resurrections int64
	var acked, crossAcked, cuts, resolved int
	for i, s := range schedules {
		rep, err := chaos.RunSharded(s)
		if err != nil {
			fmt.Fprintf(errw, "chaos: sharded schedule %d could not run: %v\n", i, err)
			return 2
		}
		if rep.Violation != "" {
			fmt.Fprintf(errw, "chaos: sharded schedule %d VIOLATION: %s\n", i, rep.Violation)
			js, _ := json.MarshalIndent(s, "", "  ")
			fmt.Fprintf(errw, "chaos: repro schedule:\n%s\n", js)
			return 1
		}
		if cfg.verbose {
			fmt.Fprintf(out,
				"schedule %3d seed=%-4d shards=%d acked=%-3d cross=%-2d resurrections=%d resolved=%d\n",
				i, s.Seed, s.Shards, rep.Acked, rep.CrossAcked, rep.Resurrections, len(rep.Resolved))
		}
		resurrections += rep.Resurrections
		acked += rep.Acked
		crossAcked += rep.CrossAcked
		if rep.Cut != nil {
			cuts++
		}
		resolved += len(rep.Resolved)
	}
	elapsedMS := (obs.NowNS() - start) / 1e6

	fmt.Fprintf(out,
		"chaos: %d sharded schedules ok in %dms: %d acked (%d cross-shard), %d resurrections, %d cuts, %d intents resolved\n",
		len(schedules), elapsedMS, acked, crossAcked, resurrections, cuts, resolved)
	if cfg.seed == 0 {
		if crossAcked == 0 {
			fmt.Fprintln(errw, "chaos: sweep committed zero cross-shard ops — two-phase path never ran")
			return 1
		}
		if resurrections == 0 {
			fmt.Fprintln(errw, "chaos: sweep drove zero resurrections — per-shard heal path never fired")
			return 1
		}
		if cuts == 0 {
			fmt.Fprintln(errw, "chaos: sweep never scripted a mid-two-phase cut")
			return 1
		}
	}
	return 0
}

func run(cfg config, out, errw io.Writer) int {
	if cfg.shards > 1 {
		return runSharded(cfg, out, errw)
	}
	var schedules []chaos.Schedule
	if cfg.seed != 0 {
		schedules = []chaos.Schedule{chaos.Generate(cfg.seed, cfg.ops)}
	} else {
		schedules = canonical(cfg.ops)
		for s := uint64(1); s <= uint64(cfg.seeds); s++ {
			schedules = append(schedules, chaos.Generate(s, cfg.ops))
		}
	}

	start := obs.NowNS()
	var resurrections, retries int64
	var acked, rejected, shed int
	for i, s := range schedules {
		rep, err := chaos.Run(s)
		if err != nil {
			fmt.Fprintf(errw, "chaos: schedule %d could not run: %v\n", i, err)
			return 2
		}
		if rep.Violation != "" {
			fmt.Fprintf(errw, "chaos: schedule %d VIOLATION: %s\n", i, rep.Violation)
			min := chaos.Minimize(s, func(c chaos.Schedule) bool {
				r, err := chaos.Run(c)
				return err == nil && r.Violation != ""
			}, 12)
			js, _ := json.MarshalIndent(min, "", "  ")
			fmt.Fprintf(errw, "chaos: minimized repro schedule:\n%s\n", js)
			return 1
		}
		if cfg.verbose {
			fmt.Fprintf(out,
				"schedule %3d seed=%-4d acked=%-3d rejected=%-3d shed=%-3d resurrections=%d retries=%d\n",
				i, s.Seed, rep.Acked, rep.Rejected, rep.Shed, rep.Resurrections, rep.Retries)
		}
		resurrections += rep.Resurrections
		retries += rep.Retries
		acked += rep.Acked
		rejected += rep.Rejected
		shed += rep.Shed
	}
	elapsedMS := (obs.NowNS() - start) / 1e6

	fmt.Fprintf(out,
		"chaos: %d schedules ok in %dms: %d acked, %d rejected, %d shed, %d resurrections, %d retries\n",
		len(schedules), elapsedMS, acked, rejected, shed, resurrections, retries)
	if cfg.seed == 0 {
		// The canonical set guarantees at least one resurrection and one
		// shed; an all-green sweep without them means the harness stopped
		// exercising the heal and admission paths.
		if resurrections == 0 {
			fmt.Fprintln(errw, "chaos: sweep drove zero resurrections — heal path never fired")
			return 1
		}
		if shed == 0 {
			fmt.Fprintln(errw, "chaos: sweep drove zero sheds — bounded admission never fired")
			return 1
		}
	}
	return 0
}

func main() {
	seeds := flag.Int("seeds", 100, "number of generated schedules to sweep")
	seed := flag.Uint64("seed", 0, "run only the schedule generated from this seed")
	ops := flag.Int("ops", 40, "workload ops per schedule")
	shards := flag.Int("shards", 1, "sweep the K-shard multi-store instead of the single pipeline")
	verbose := flag.Bool("v", false, "print a line per schedule")
	flag.Parse()
	os.Exit(run(config{seeds: *seeds, seed: *seed, ops: *ops, shards: *shards, verbose: *verbose},
		os.Stdout, os.Stderr))
}
