package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSweep drives the runner the way the chaos-smoke CI job does:
// canonical per-kind schedules plus a small generated sweep, exit 0,
// and a summary proving the heal and admission paths both fired.
func TestRunSweep(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(config{seeds: 10, ops: 30}, &out, &errw); code != 0 {
		t.Fatalf("run exited %d:\n%s%s", code, out.String(), errw.String())
	}
	sum := out.String()
	if !strings.Contains(sum, "schedules ok") {
		t.Errorf("missing summary line:\n%s", sum)
	}
	if strings.Contains(sum, "0 resurrections") || strings.Contains(sum, " 0 shed") {
		t.Errorf("sweep failed to exercise heal or admission:\n%s", sum)
	}
}

// TestRunSingleSeed reproduces one generated schedule by seed, the
// workflow a failing sweep hands to the developer.
func TestRunSingleSeed(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(config{seed: 17, ops: 30}, &out, &errw); code != 0 {
		t.Fatalf("run exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "1 schedules ok") {
		t.Errorf("single-seed run summary:\n%s", out.String())
	}
}

// TestRunShardedSweep drives the sharded mode the way the shard-smoke
// CI job does: generated multi-shard schedules with scripted
// mid-two-phase cuts, exit 0, and a summary proving the cross-shard
// commit, heal, and cut paths all fired.
func TestRunShardedSweep(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(config{seeds: 25, ops: 24, shards: 3}, &out, &errw); code != 0 {
		t.Fatalf("run exited %d:\n%s%s", code, out.String(), errw.String())
	}
	sum := out.String()
	if !strings.Contains(sum, "sharded schedules ok") {
		t.Errorf("missing sharded summary line:\n%s", sum)
	}
	if strings.Contains(sum, "(0 cross-shard)") || strings.Contains(sum, "0 resurrections") ||
		strings.Contains(sum, " 0 cuts") {
		t.Errorf("sharded sweep failed to exercise a required path:\n%s", sum)
	}
}

// TestRunShardedSingleSeed reproduces one generated sharded schedule
// by seed.
func TestRunShardedSingleSeed(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(config{seed: 4, ops: 24, shards: 2}, &out, &errw); code != 0 {
		t.Fatalf("run exited %d:\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "1 sharded schedules ok") {
		t.Errorf("single-seed sharded run summary:\n%s", out.String())
	}
}

// TestRunVerbose prints one line per schedule.
func TestRunVerbose(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(config{seeds: 2, ops: 20, verbose: true}, &out, &errw); code != 0 {
		t.Fatalf("run exited %d:\n%s", code, errw.String())
	}
	// 6 canonical + 2 generated schedule lines plus the summary.
	if got := strings.Count(out.String(), "schedule "); got != 8 {
		t.Errorf("verbose run printed %d schedule lines, want 8:\n%s", got, out.String())
	}
}
