// Command prove derives a functional or explicit functional dependency
// from a schema's Σ using Armstrong's axioms augmented with the EFD rules
// of §5, and prints the proof tree (or reports underivability, which by
// completeness means non-implication).
//
// Usage:
//
//	prove -schema schema.txt "E -> M"
//	prove -schema schema.txt "Cost Rate =>e Price"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/constcomp/constcomp/internal/axioms"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prove: ")
	schemaPath := flag.String("schema", "", "path to the schema file (required)")
	flag.Parse()
	if *schemaPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	text, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := workload.ParseSchema(string(text))
	if err != nil {
		log.Fatal(err)
	}
	goal, err := dep.Parse(schema.Universe(), strings.TrimSpace(flag.Arg(0)))
	if err != nil {
		log.Fatal(err)
	}
	switch goal.Kind() {
	case dep.KindFD, dep.KindEFD:
	default:
		log.Fatalf("goal must be an FD or EFD, got %v", goal.Kind())
	}
	p := axioms.NewProver(schema.Sigma())
	proof, ok := p.Prove(goal)
	if !ok {
		fmt.Printf("Σ ⊬ %v  (and by completeness, Σ ⊭ %v)\n", goal, goal)
		os.Exit(1)
	}
	if err := p.Verify(proof); err != nil {
		log.Fatalf("internal: produced proof does not verify: %v", err)
	}
	fmt.Printf("Σ ⊢ %v   (%d steps, verified)\n\n", goal, proof.Size())
	fmt.Print(proof.Render())
}
