// Command constvet is the repository's invariant multichecker: it runs
// the internal/analysis suite (fsyncorder, mapiter, budgetloop,
// lockhold, deadlineflow, errflow, nilmetrics, rawgo, walltime, ...)
// over the given packages and exits non-zero on any unsuppressed
// diagnostic.
//
// Usage:
//
//	constvet [-list] [-v] [-json] [-run name,name] [packages...]
//
// Packages default to ./.... Whatever the target patterns, the whole
// module is loaded once into a call graph so cross-package dataflow
// facts (may-block, budget discipline, fsync obligations) are complete.
// Intentional exceptions are annotated at the offending line with
// `//constvet:allow <name> -- reason`; -v prints the suppressed
// findings too, so exceptions stay auditable. -json emits every finding
// (suppressed included) as one JSON object per line for CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/constcomp/constcomp/internal/analysis"
)

// jsonFinding is the -json wire form: one object per line.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line (suppressed included)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "constvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "constvet:", err)
		os.Exit(2)
	}
	prog, pkgs, err := analysis.LoadProgram(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "constvet:", err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			fs, err := analysis.RunAnalyzer(a, prog, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "constvet:", err)
				os.Exit(2)
			}
			findings = append(findings, fs...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})

	enc := json.NewEncoder(os.Stdout)
	failed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			failed++
		}
		switch {
		case *jsonOut:
			if err := enc.Encode(jsonFinding{
				Analyzer: f.Analyzer,
				Pos:      f.Pos.String(),
				Message:  f.Message,
				Allowed:  f.Suppressed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "constvet:", err)
				os.Exit(2)
			}
		case !f.Suppressed || *verbose:
			fmt.Println(f)
		}
	}
	if *verbose || failed > 0 {
		fmt.Fprintf(os.Stderr, "constvet: %d finding(s), %d suppressed, %d package(s)\n",
			failed, suppressed, len(pkgs))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
