// Command constvet is the repository's invariant multichecker: it runs
// the internal/analysis suite (fsyncorder, mapiter, budgetloop,
// nilmetrics, rawgo, walltime) over the given packages and exits
// non-zero on any unsuppressed diagnostic.
//
// Usage:
//
//	constvet [-list] [-v] [-run name,name] [packages...]
//
// Packages default to ./.... Intentional exceptions are annotated at the
// offending line with `//constvet:allow <name> -- reason`; -v prints the
// suppressed findings too, so exceptions stay auditable.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/constcomp/constcomp/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "constvet: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "constvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "constvet:", err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			fs, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "constvet:", err)
				os.Exit(2)
			}
			findings = append(findings, fs...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})

	failed, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if *verbose {
				fmt.Println(f)
			}
			continue
		}
		failed++
		fmt.Println(f)
	}
	if *verbose || failed > 0 {
		fmt.Fprintf(os.Stderr, "constvet: %d finding(s), %d suppressed, %d package(s)\n",
			failed, suppressed, len(pkgs))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
