package constcomp

// One testing.B benchmark per experiment of DESIGN.md's index (E1–E16,
// A1–A3). cmd/experiments prints the full parameter-sweep tables; these
// benches give the per-operation micro-measurements at a representative
// size, runnable with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/axioms"
	"github.com/constcomp/constcomp/internal/bs"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/netserve"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/reductions"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// BenchE1Complementary measures the Theorem 1 complementarity test on a
// random 16-attribute FD schema.
func BenchmarkE1Complementary(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	names := make([]string, 16)
	for i := range names {
		names[i] = fmt.Sprintf("A%02d", i)
	}
	u := attr.MustUniverse(names...)
	sigma := dep.NewSet(u)
	for _, f := range workload.RandomFDs(u, rng, 16) {
		sigma.Add(f)
	}
	s := core.MustSchema(u, sigma)
	x := u.MustSet("A00", "A01", "A02", "A03", "A04", "A05", "A06", "A07")
	y := x.Complement().With(0).With(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Complementary(s, x, y)
	}
}

func BenchmarkE2ComplementTestWide(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("U=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("A%03d", i)
			}
			u := attr.MustUniverse(names...)
			sigma := dep.NewSet(u)
			for _, f := range workload.RandomFDs(u, rng, n) {
				sigma.Add(f)
			}
			s := core.MustSchema(u, sigma)
			x := u.Empty()
			for i := 0; i < n/2; i++ {
				x = x.With(attr.ID(i))
			}
			y := x.Complement().With(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Complementary(s, x, y)
			}
		})
	}
}

func BenchmarkE3MinimalComplement(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	names := make([]string, 24)
	for i := range names {
		names[i] = fmt.Sprintf("A%02d", i)
	}
	u := attr.MustUniverse(names...)
	sigma := dep.NewSet(u)
	for _, f := range workload.RandomFDs(u, rng, 24) {
		sigma.Add(f)
	}
	s := core.MustSchema(u, sigma)
	x := u.Empty()
	for i := 0; i < 12; i++ {
		x = x.With(attr.ID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MinimalComplement(s, x)
	}
}

func BenchmarkE4MinimumComplement(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	phi := logic.Random3CNF(rng, 3, 4)
	red, err := reductions.BuildTheorem2(phi)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MinimumComplement(red.Schema, red.X)
	}
}

// insertFixture builds the chain workload at |V| = n.
func insertFixture(n int) (*core.Pair, *relation.Relation, relation.Tuple) {
	c := workload.NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	return p, c.ViewInstance(n), c.InsertTuple(n)
}

func BenchmarkE5InsertExact(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			p, v, t := insertFixture(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := p.DecideInsert(v, t)
				if err != nil || !d.Translatable {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
}

func BenchmarkE6ApplyInsert(b *testing.B) {
	e := workload.NewEDM()
	p := core.MustPair(e.Schema, e.ED, e.DM)
	db := e.Instance(1024, 64)
	t := e.NewEmployeeTuple("newbie", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ApplyInsert(db, t); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5InsertDelta measures the session decide path with
// delta-driven incremental maintenance on, holding |Δ| = 1 while the
// instance grows. The headline of the incremental layer: ns/op should
// stay roughly flat across the V sweep, where the stateless
// BenchmarkE5InsertExact grows linearly. Each iteration decides a
// distinct op (fresh employee name) so the decision cache never hits
// and every sample exercises the index-probed incremental decide.
func BenchmarkE5InsertDelta(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			e := workload.NewEDM()
			pair := core.MustPair(e.Schema, e.ED, e.DM)
			sess, err := core.NewSession(pair, e.Instance(n, 16))
			if err != nil {
				b.Fatal(err)
			}
			// Pre-intern the op tuples (decide-only: version never
			// moves, so distinct tuples are what defeat the cache) and
			// pay the one-time incremental state build before timing.
			ops := make([]core.UpdateOp, b.N)
			for i := range ops {
				ops[i] = core.Insert(e.NewEmployeeTuple(fmt.Sprintf("delta%d", i), i%16))
			}
			if _, err := sess.Decide(core.Insert(e.NewEmployeeTuple("warmup", 0))); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := sess.Decide(ops[i])
				if err != nil || !d.Translatable {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
}

// BenchmarkApplyDeltaVsFull measures durable mixed batches (4 inserts
// + 4 deletes per group commit, net-zero size) through a store session
// with the incremental path on and off, across growing instances. The
// instance grows in both dimensions (V/16 departments of 16 employees)
// so the chase component touched by a delete — one department, whose
// padded M-nulls D→M merges into one class — stays constant-size: the
// incremental claim is cost ∝ |Δ| plus the affected component, never
// the instance. The inc=on rows should stay roughly flat in ns/op as V
// grows; inc=off re-projects and re-verifies the whole instance per op.
func BenchmarkApplyDeltaVsFull(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		for _, inc := range []bool{true, false} {
			b.Run(fmt.Sprintf("V=%d/inc=%v", n, inc), func(b *testing.B) {
				e := workload.NewEDM()
				pair := core.MustPair(e.Schema, e.ED, e.DM)
				st, err := store.Create(store.NewMemFS(), pair, e.Instance(n, n/16), e.Syms,
					store.Options{SnapshotEvery: 1 << 30})
				if err != nil {
					b.Fatal(err)
				}
				st.SetIncremental(inc)
				ctx := context.Background()
				batches := make([][]core.UpdateOp, b.N)
				for i := range batches {
					batch := make([]core.UpdateOp, 0, 8)
					for j := 0; j < 4; j++ {
						t := e.NewEmployeeTuple(fmt.Sprintf("d%d_%d", i, j), j)
						batch = append(batch, core.Insert(t))
					}
					for j := 0; j < 4; j++ {
						t := e.NewEmployeeTuple(fmt.Sprintf("d%d_%d", i, j), j)
						batch = append(batch, core.Delete(t))
					}
					batches[i] = batch
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					items, err := st.ApplyBatchCtx(ctx, batches[i])
					if err != nil {
						b.Fatal(err)
					}
					for _, it := range items {
						if it.Err != nil {
							b.Fatal(it.Err)
						}
					}
				}
			})
		}
	}
}

func BenchmarkE7Test1(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			p, v, t := insertFixture(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.DecideInsertTest1(v, t); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8Test2(b *testing.B) {
	p, v, t := insertFixture(256)
	good, err := p.IsGoodComplement()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("goodness-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.IsGoodComplement(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.DecideInsertTest2Known(v, t, good); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE9SuccinctInsert(b *testing.B) {
	g := logic.MustCNF(5,
		logic.Clause{1, -2, 3},
		logic.Clause{2, -3, 4},
		logic.Clause{3, -4, 5},
	)
	red, err := reductions.BuildTheorem4(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := core.NewPair(red.Schema, red.X, red.Y)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("expand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			red.View.Expand()
		}
	})
	v := red.View.Expand()
	b.Run("decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pair.DecideInsert(v, red.T); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE10SuccinctTest1(b *testing.B) {
	g := logic.MustCNF(7,
		logic.Clause{-1, 2, -3},
		logic.Clause{-2, 3, -4},
		logic.Clause{-3, 4, -5},
		logic.Clause{-4, 5, -6},
		logic.Clause{-5, 6, -7},
	)
	red, err := reductions.BuildTheorem5(g)
	if err != nil {
		b.Fatal(err)
	}
	pair, err := core.NewPair(red.Schema, red.X, red.Y)
	if err != nil {
		b.Fatal(err)
	}
	v := red.View.Expand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pair.DecideInsertTest1(v, red.T); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11FindComplement(b *testing.B) {
	e := workload.NewEDM()
	v := e.ViewInstance(256, 32)
	t := e.NewEmployeeTuple("waldo", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FindInsertComplement(e.Schema, e.ED, v, t, core.TestExact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12SuccinctFind(b *testing.B) {
	g := logic.MustCNF(4,
		logic.Clause{1, 2, 3},
		logic.Clause{2, 3, 4},
	)
	red, err := reductions.BuildTheorem7(g)
	if err != nil {
		b.Fatal(err)
	}
	v := red.View.Expand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FindInsertComplement(red.Schema, red.X, v, red.T, core.TestExact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13Delete(b *testing.B) {
	e := workload.NewEDM()
	p := core.MustPair(e.Schema, e.ED, e.DM)
	v := e.ViewInstance(1024, 1024) // worst case: full scan
	t := v.Tuple(0).Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DecideDelete(v, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14Replace(b *testing.B) {
	p, v, t2 := insertFixture(256)
	t1 := v.Tuple(0).Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DecideReplace(v, t1, t2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE15EFD(b *testing.B) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	sigma := dep.MustParseSet(u, "A =>e B\nB =>e C\nC -> D\nD =>e E")
	s := core.MustSchema(u, sigma)
	target := dep.NewEFD(u.MustSet("A"), u.MustSet("C"))
	b.Run("implies", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ImpliesEFD(s, target)
		}
	})
	x, y := u.MustSet("A", "B", "C"), u.MustSet("C", "D")
	b.Run("thm10-complementary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Complementary(s, x, y)
		}
	})
}

func BenchmarkE16Morphism(b *testing.B) {
	var states []string
	for a := 0; a < 8; a++ {
		for c := 0; c < 8; c++ {
			states = append(states, fmt.Sprintf("%d,%d", a, c))
		}
	}
	sp := bs.NewSpace(states...)
	v := bs.View[string, string](func(s string) string { return s[:1] })
	w := bs.View[string, string](func(s string) string { return s[2:] })
	tr, err := bs.NewTranslator(sp, v, w)
	if err != nil {
		b.Fatal(err)
	}
	u1 := bs.Update[string](func(a string) string {
		return string(rune('0' + (int(a[0]-'0')+1)%8))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.CheckMorphism(u1, u1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17Axioms(b *testing.B) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	sigma := dep.MustParseSet(u, "A -> B\nB =>e C\nC -> D\nD =>e E")
	p := axioms.NewProver(sigma)
	goal := dep.NewFD(u.MustSet("A"), u.MustSet("E"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, ok := p.ProveFD(goal)
		if !ok {
			b.Fatal("underivable")
		}
		if err := p.Verify(proof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA1ChaseImpl(b *testing.B) {
	c := workload.NewChain(6, 3)
	fds := c.Schema.Sigma().SplitFDs()
	u := c.Schema.Universe()
	v := c.ViewInstance(256)
	var gen value.NullGen
	padded := relation.New(u.All())
	for _, t := range v.Tuples() {
		nt := make(relation.Tuple, u.Size())
		for col := 0; col < u.Size(); col++ {
			if vc := v.Col(attr.ID(col)); vc >= 0 {
				nt[col] = t[vc]
			} else {
				nt[col] = gen.Fresh()
			}
		}
		padded.Insert(nt)
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chase.Instance(padded, fds)
		}
	})
	b.Run("sort-paper", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chase.InstanceSortBased(padded, fds)
		}
	})
}

func BenchmarkA2MVDInference(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	sigma := dep.NewSet(u)
	for _, f := range workload.RandomFDs(u, rng, 4) {
		sigma.Add(f)
	}
	m := dep.NewMVD(u.MustSet("A", "B"), u.MustSet("C", "D"))
	b.Run("dependency-basis", func(b *testing.B) {
		fds := sigma.FDs()
		for i := 0; i < b.N; i++ {
			chase.FDOnlyImpliesMVD(fds, m)
		}
	})
	b.Run("tableau", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chase.ImpliesMVD(sigma, m)
		}
	})
}

func BenchmarkA4DependencyBasis(b *testing.B) {
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	sigma := dep.MustParseSet(u, "A -> B\nA ->> C\nC D -> E\nB ->> D")
	m := dep.NewMVD(u.MustSet("A"), u.MustSet("C", "E"))
	b.Run("basis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chase.BasisImpliesMVD(sigma, m)
		}
	})
	b.Run("tableau", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chase.ImpliesMVD(sigma, m)
		}
	})
}

func BenchmarkA5ImposeStrategy(b *testing.B) {
	p, v, t := insertFixture(256)
	b.Run("incremental", func(b *testing.B) {
		p.SetImposeStrategy(core.ImposeIncremental)
		for i := 0; i < b.N; i++ {
			if d, err := p.DecideInsert(v, t); err != nil || !d.Translatable {
				b.Fatal("unexpected verdict")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		p.SetImposeStrategy(core.ImposeRebuild)
		for i := 0; i < b.N; i++ {
			if d, err := p.DecideInsert(v, t); err != nil || !d.Translatable {
				b.Fatal("unexpected verdict")
			}
		}
	})
	p.SetImposeStrategy(core.ImposeIncremental)
}

func BenchmarkA3Join(b *testing.B) {
	e := workload.NewEDM()
	db := e.Instance(4096, 256)
	vy := db.Project(e.DM)
	tx := relation.Singleton(e.ED, e.NewEmployeeTuple("probe", 0))
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tx.JoinWith(vy, relation.HashJoin)
		}
	})
	b.Run("sort-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tx.JoinWith(vy, relation.SortMergeJoin)
		}
	})
}

// --- Kernel micro-benchmarks ---
//
// These track the relational-kernel perf trajectory across PRs (make
// bench writes them to BENCH.json). Unlike E1–E16 they measure
// single engine operations, so allocation counts are meaningful.

func BenchmarkRelInsert100k(b *testing.B) {
	const n, w = 100000, 4
	rng := rand.New(rand.NewSource(7))
	u := attr.MustUniverse("A", "B", "C", "D")
	tuples := workload.BulkTuples(rng, n, w, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := relation.New(u.All())
		for _, t := range tuples {
			r.Insert(t)
		}
	}
}

func BenchmarkRelContains(b *testing.B) {
	const n, w = 100000, 4
	rng := rand.New(rand.NewSource(8))
	u := attr.MustUniverse("A", "B", "C", "D")
	tuples := workload.BulkTuples(rng, n, w, 1<<20)
	r := relation.New(u.All())
	for _, t := range tuples {
		r.Insert(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Contains(tuples[i%n]) {
			b.Fatal("missing tuple")
		}
	}
}

func BenchmarkRelProject(b *testing.B) {
	const n, w = 100000, 6
	rng := rand.New(rand.NewSource(9))
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	tuples := workload.BulkTuples(rng, n, w, 64)
	r := relation.New(u.All())
	for _, t := range tuples {
		r.Insert(t)
	}
	onto := u.MustSet("B", "D", "F")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Project(onto)
	}
}

func BenchmarkRelUnionDiff(b *testing.B) {
	const n, w = 50000, 4
	rng := rand.New(rand.NewSource(10))
	u := attr.MustUniverse("A", "B", "C", "D")
	mk := func() *relation.Relation {
		r := relation.New(u.All())
		for _, t := range workload.BulkTuples(rng, n, w, 1<<16) {
			r.Insert(t)
		}
		return r
	}
	r, s := mk(), mk()
	b.Run("union", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Union(s)
		}
	})
	b.Run("diff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Diff(s)
		}
	})
}

func BenchmarkRelChaseInstance(b *testing.B) {
	c := workload.NewChain(6, 3)
	fds := c.Schema.Sigma().SplitFDs()
	u := c.Schema.Universe()
	v := c.ViewInstance(1024)
	var gen value.NullGen
	padded := relation.New(u.All())
	for _, t := range v.Tuples() {
		nt := make(relation.Tuple, u.Size())
		for col := 0; col < u.Size(); col++ {
			if vc := v.Col(attr.ID(col)); vc >= 0 {
				nt[col] = t[vc]
			} else {
				nt[col] = gen.Fresh()
			}
		}
		padded.Insert(nt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chase.Instance(padded, fds)
	}
}

// BenchmarkRelJoin100k joins two 100k-tuple relations sharing two
// attributes, serially and with the partitioned parallel kernel, to
// record the Parallelism knob's effect at scale.
func BenchmarkRelJoin100k(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(11))
	ur := attr.MustUniverse("A", "B", "C", "D")
	rset, _ := ur.ParseSet("A B C")
	sset, _ := ur.ParseSet("B C D")
	mkRel := func(set attr.Set) *relation.Relation {
		r := relation.New(set)
		for _, t := range workload.BulkTuples(rng, n, 3, 512) {
			r.Insert(t)
		}
		return r
	}
	r, s := mkRel(rset), mkRel(sset)
	for _, nw := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			relation.Parallelism(nw)
			defer relation.Parallelism(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Join(s)
			}
		})
	}
}

// benchStoreFixture builds the EDM durable-session fixture for the
// store benchmarks.
func benchStoreFixture() (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

// BenchmarkStoreJournalAppend measures the full durable-apply path —
// decide, apply, encode, journal write, fsync — against an in-memory
// FS. Each iteration inserts and deletes one employee so the database
// stays a constant size.
func BenchmarkStoreJournalAppend(b *testing.B) {
	pair, db, syms := benchStoreFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := syms.Const(fmt.Sprintf("t%d", i))
		dept := syms.Const("dept0")
		if _, err := st.Apply(core.Insert(relation.Tuple{name, dept})); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Apply(core.Delete(relation.Tuple{name, dept})); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRecoverReplay measures recovery of a 1000-record
// journal onto its snapshot, including the invariant re-verification.
func BenchmarkStoreRecoverReplay(b *testing.B) {
	pair, db, syms := benchStoreFixture()
	mem := store.NewMemFS()
	st, err := store.Create(mem, pair, db, syms, store.Options{SnapshotEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		name := syms.Const(fmt.Sprintf("t%d", i))
		dept := syms.Const("dept0")
		if _, err := st.Apply(core.Insert(relation.Tuple{name, dept})); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Apply(core.Delete(relation.Tuple{name, dept})); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.Recover(mem, pair, value.NewSymbols(), store.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScanJournal isolates the record decoder: checksum
// verification plus payload parsing over a 1000-record image.
func BenchmarkStoreScanJournal(b *testing.B) {
	var img []byte
	for i := 0; i < 1000; i++ {
		img = append(img, store.EncodeRecord(uint64(i+1), core.UpdateInsert,
			[]string{fmt.Sprintf("emp%d", i), "dept0"}, nil)...)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan := store.ScanJournal(img)
		if len(scan.Records) != 1000 || scan.Torn || scan.Corrupt {
			b.Fatal("bad scan")
		}
	}
}

// BenchmarkPipelineOpsPerSec measures journaled update throughput
// through the serve pipeline at several group-commit batch sizes, on
// both the in-memory FS and a real directory (where fsync cost
// dominates). batch=1 is the per-op-fsync baseline; the ratio of
// batch=32 to batch=1 on fs=dir is the headline group-commit win. Each
// op alternates insert/delete of one employee so the database stays a
// constant size and every decision is translatable.
func BenchmarkPipelineOpsPerSec(b *testing.B) {
	for _, fsName := range []string{"mem", "dir"} {
		for _, batch := range []int{1, 8, 32, 128} {
			b.Run(fmt.Sprintf("fs=%s/batch=%d", fsName, batch), func(b *testing.B) {
				pair, db, syms := benchStoreFixture()
				var fs store.FS
				if fsName == "mem" {
					fs = store.NewMemFS()
				} else {
					dfs, err := store.NewDirFS(b.TempDir())
					if err != nil {
						b.Fatal(err)
					}
					fs = dfs
				}
				st, err := store.Create(fs, pair, db, syms, store.Options{SnapshotEvery: 1 << 30})
				if err != nil {
					b.Fatal(err)
				}
				pipe, err := serve.New(st, serve.Options{MaxBatch: batch})
				if err != nil {
					b.Fatal(err)
				}
				defer pipe.Close()

				// Pre-intern every name: Symbols is not safe for
				// concurrent interning and the decider goroutine reads
				// interned constants while we submit.
				names := make([]relation.Tuple, b.N)
				dept := syms.Const("dept0")
				for i := range names {
					names[i] = relation.Tuple{syms.Const(fmt.Sprintf("t%d", i/2)), dept}
				}

				// Sliding async window: keep enough requests in flight
				// to fill batches without an artificial barrier.
				window := make([]*serve.Pending, 0, 4*batch)
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := core.Insert(names[i])
					if i%2 == 1 {
						op = core.Delete(names[i])
					}
					pend, err := pipe.ApplyAsync(ctx, op)
					if err != nil {
						b.Fatal(err)
					}
					window = append(window, pend)
					if len(window) == cap(window) {
						if _, err := window[0].Wait(); err != nil {
							b.Fatal(err)
						}
						window = window[1:]
					}
				}
				for _, pend := range window {
					if _, err := pend.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			})
		}
	}
}

// benchWideFixture is benchStoreFixture at scale: n employees over n/2
// two-person departments (plus dept0, which the workload churns).
// Department equality classes stay O(1), so the chase never blows up;
// what grows with n is each shard's resident decide state — the
// maintained padding an insert decide completes against — so per-op
// cost carries an honest O(residency) term that hash partitioning
// divides by K.
func benchWideFixture(n int) (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < n; i++ {
		// The first 64 employees all join dept0, the department the
		// workload churns: every shard must hold dept0 sharers or the
		// benchmark ops would be rejected as untranslatable.
		d := 0
		if i >= 64 {
			d = i / 2
		}
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", d)),
			syms.Const(fmt.Sprintf("mgr%d", d)),
		})
	}
	return pair, db, syms
}

// runShardedBench drives the BenchmarkPipelineOpsPerSec workload (t%d
// insert/delete pairs against dept0, sliding window of in-flight acks)
// through a sharded multi-store over the given instance.
func runShardedBench(b *testing.B, k int, pair *core.Pair, db *relation.Relation, syms *value.Symbols) {
	mem := store.NewMemFS()
	fss := make([]store.FS, k)
	for i := range fss {
		fss[i] = shard.SubFS(mem, fmt.Sprintf("s%d/", i))
	}
	m, _, err := shard.Open(fss, pair, db, syms, shard.Options{
		Shards: k,
		Store:  store.Options{SnapshotEvery: 1 << 30},
		Serve:  serve.Options{MaxBatch: 32},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()

	// Every shard must already hold a dept0 sharer or the workload's
	// inserts and deletes would be rejected on that shard.
	router := m.Router()
	have := make([]int, k)
	for _, t := range db.Tuples() {
		if syms.Name(t[1]) == "dept0" {
			have[router.ShardOfName(syms.Name(t[0]))]++
		}
	}
	for s, n := range have {
		if n < 2 {
			b.Fatalf("shard %d holds %d dept0 rows; fixture too small for K=%d", s, n, k)
		}
	}

	// Pre-intern every name: Symbols is not safe for concurrent
	// interning and the decider goroutines read interned constants
	// while we submit.
	names := make([]relation.Tuple, b.N)
	dept := syms.Const("dept0")
	for i := range names {
		names[i] = relation.Tuple{syms.Const(fmt.Sprintf("t%d", i/2)), dept}
	}

	// Warm every shard's incremental decide state (built lazily on a
	// shard's first decide, O(residency) and then delta-maintained)
	// before the timer starts, so the measurement is steady-state cost.
	for i, warmed := 0, 0; warmed < k; i++ {
		name := fmt.Sprintf("warm%d", i)
		if have[router.ShardOfName(name)] < 0 {
			continue // shard already warmed
		}
		have[router.ShardOfName(name)] = -1
		warmed++
		warm := relation.Tuple{syms.Const(name), dept}
		for _, op := range []core.UpdateOp{core.Insert(warm), core.Delete(warm)} {
			if _, err := m.Apply(context.Background(), op); err != nil {
				b.Fatal(err)
			}
		}
	}

	window := make([]serve.Waiter, 0, 128)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := core.Insert(names[i])
		if i%2 == 1 {
			op = core.Delete(names[i])
		}
		pend, err := m.ApplyAsync(ctx, op)
		if err != nil {
			b.Fatal(err)
		}
		window = append(window, pend)
		if len(window) == cap(window) {
			if _, err := window[0].Wait(); err != nil {
				b.Fatal(err)
			}
			window = window[1:]
		}
	}
	for _, pend := range window {
		if _, err := pend.Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkShardedOpsPerSec is the partitioning headline: the pipeline
// workload against a 4096-employee wide instance at K shards. Each
// shard decides against only its own residents, so the O(residency)
// component of an insert decide (completing the candidate against the
// shard's maintained padding) shrinks by K and ops/sec scales
// near-linearly — the same division of state-bound work the placement
// table buys on real multi-core hardware, visible here even serialized
// onto one core. Every op is single-shard (the fast path); the
// instance is identical across K.
func BenchmarkShardedOpsPerSec(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			pair, db, syms := benchWideFixture(4096)
			runShardedBench(b, k, pair, db, syms)
		})
	}
}

// BenchmarkShardedParityOpsPerSec is the no-tax check: the exact
// BenchmarkPipelineOpsPerSec/fs=mem/batch=32 instance and workload
// through the sharding layer at K=1. Router, placement, and the
// cross-shard machinery must cost nothing when there is nothing to
// route — this number is meant to sit within noise of the unsharded
// baseline.
func BenchmarkShardedParityOpsPerSec(b *testing.B) {
	pair, db, syms := benchStoreFixture()
	runShardedBench(b, 1, pair, db, syms)
}

// BenchmarkNetServe measures the serving stack end to end: HTTP submit
// requests through internal/netserve into a self-healing pipeline over
// a MemFS store, on a keepalive connection. One benchmark op is one
// view update; each request carries a 16-op batch (alternating
// insert/delete so the view stays bounded) in the binary frame or JSON
// encoding. Client-observed ops/sec and per-request p99 land beside
// ns/op in the report.
func BenchmarkNetServe(b *testing.B) {
	const perReq = 16
	for _, enc := range []string{"frame", "json"} {
		b.Run(fmt.Sprintf("encode=%s/batch=%d", enc, perReq), func(b *testing.B) {
			pair, db, syms := benchStoreFixture()
			st, err := store.Create(store.NewMemFS(), pair, db, syms,
				store.Options{SnapshotEvery: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			srv := netserve.NewServer(netserve.Options{})
			if err := srv.AddView("ed", st, syms, serve.Options{MaxBatch: 64}); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ts.Close()
				_ = srv.Close()
			}()
			url := ts.URL + "/v1/views/ed/submit"

			// Pre-encode every request body outside the timed loop: the
			// benchmark measures the server, not the client's encoder.
			nReq := (b.N + perReq - 1) / perReq
			bodies := make([][]byte, nReq)
			ctype := netserve.ContentTypeFrame
			for r := range bodies {
				ops := make([]netserve.WireOp, perReq)
				for j := range ops {
					i := r*perReq + j
					op := netserve.WireOp{Kind: netserve.KindInsert,
						Tuple: []string{fmt.Sprintf("t%d", i/2), "dept0"}}
					if i%2 == 1 {
						op.Kind = netserve.KindDelete
					}
					ops[j] = op
				}
				if enc == "frame" {
					var body []byte
					for _, op := range ops {
						if body, err = netserve.AppendOpFrame(body, op); err != nil {
							b.Fatal(err)
						}
					}
					bodies[r] = body
				} else {
					ctype = netserve.ContentTypeJSON
					body, err := json.Marshal(netserve.SubmitRequest{Ops: ops})
					if err != nil {
						b.Fatal(err)
					}
					bodies[r] = body
				}
			}

			lat := obs.NewRegistry().Histogram("req_ns")
			client := ts.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for _, body := range bodies {
				t0 := obs.NowNS()
				resp, err := client.Post(url, ctype, bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("submit status %d", resp.StatusCode)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				lat.ObserveDuration(obs.NowNS() - t0)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
			b.ReportMetric(lat.Quantile(0.99), "p99-req-ns")
		})
	}
}
