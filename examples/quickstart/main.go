// Quickstart: define a universal-relation schema, pick a view and a
// complement, and translate view updates under the constant complement —
// the five-minute tour of the library's public API.
package main

import (
	"fmt"
	"log"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func main() {
	// 1. A schema (U, Σ): employees, departments, managers with the FDs
	//    E → D (each employee works in one department) and D → M (each
	//    department has one manager).
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, `
E -> D
D -> M
`)
	schema := core.MustSchema(u, sigma)

	// 2. A database instance.
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for _, row := range [][]string{
		{"ed", "toys", "mo"},
		{"flo", "toys", "mo"},
		{"bob", "tools", "tim"},
	} {
		if err := db.InsertNamed(syms, map[string]string{"E": row[0], "D": row[1], "M": row[2]}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Database R:")
	fmt.Println(db.Format(syms))

	// 3. The view π_ED and its complement π_DM. NewPair verifies they are
	//    complementary (Theorem 1): D → M makes D a key of DM.
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	pair, err := core.NewPair(schema, x, y)
	if err != nil {
		log.Fatal(err)
	}
	view := db.Project(x)
	fmt.Println("View π_ED(R):")
	fmt.Println(view.Format(syms))

	// 4. Insert (ann, toys) into the view. DecideInsert runs the exact
	//    chase test of Theorem 3; ApplyInsert performs the unique
	//    translation T_u[R] = R ∪ t*π_DM(R).
	t := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	decision, err := pair.DecideInsert(view, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert (ann, toys): %s\n", decision.Reason)
	if decision.Translatable {
		db, err = pair.ApplyInsert(db, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nAfter the translated insertion (ann got mo as manager):")
		fmt.Println(db.Format(syms))
	}

	// 5. An untranslatable insertion: no department "plants" exists in
	//    the complement, so the complement could not stay constant.
	bad := relation.Tuple{syms.Const("zoe"), syms.Const("plants")}
	decision, err = pair.DecideInsert(db.Project(x), bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insert (zoe, plants): translatable=%v — %s\n",
		decision.Translatable, decision.Reason)

	// 6. Deletions translate in O(|V| + |Σ|) (Theorem 8).
	del := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	decision, err = pair.DecideDelete(db.Project(x), del)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delete (ed, toys): translatable=%v — %s\n",
		decision.Translatable, decision.Reason)
	if decision.Translatable {
		db, err = pair.ApplyDelete(db, del)
		if err != nil {
			log.Fatal(err)
		}
	}

	// 7. Ask the system for complements (Corollary 2 / Theorem 2).
	minimal := core.MinimalComplement(schema, x)
	minimum, _ := core.MinimumComplement(schema, x)
	fmt.Printf("\nminimal complement of ED: %v\n", minimal)
	fmt.Printf("minimum complement of ED: %v\n", minimum)
	good, _ := pair.IsGoodComplement()
	fmt.Printf("DM is a good complement of ED (Test 2 applies): %v\n", good)
}
