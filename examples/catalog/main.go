// Catalog: the paper's §1 usage scenario end to end. The "database
// system" (core.Manager) assists a user who wants to update a view: it
// recommends complements (ranked: good ones first, then smallest), the
// user registers one, and a Session then routes updates — translating the
// translatable ones and rejecting the rest with the paper's diagnosis —
// while the system enforces the constant-complement and legality
// invariants after every step. The second half shows the same analysis on
// a multi-relation database (a lossless decomposition), where Theorem 1's
// join dependency participates in the complementarity chase.
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/multirel"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	e := workload.NewEDM()
	schema, syms := e.Schema, e.Syms
	u := schema.Universe()

	db := relation.New(u.All())
	for _, row := range [][]string{
		{"ed", "toys", "mo"}, {"flo", "toys", "mo"},
		{"bob", "tools", "tim"}, {"sue", "tools", "tim"},
	} {
		if err := db.InsertNamed(syms, map[string]string{"E": row[0], "D": row[1], "M": row[2]}); err != nil {
			log.Fatal(err)
		}
	}

	// --- The system recommends complements ------------------------------
	mgr := core.NewManager(schema)
	fmt.Println("complement recommendations for π_ED:")
	for _, rec := range mgr.Recommend(e.ED) {
		fmt.Printf("  Y=%-6v size=%d minimal=%-5v minimum=%-5v good=%v\n",
			rec.Y, rec.Size, rec.Minimal, rec.Minimum, rec.Good)
	}
	pair, err := mgr.RegisterRecommended(e.ED)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered: view %v, constant complement %v\n\n",
		pair.ViewAttrs(), pair.ComplementAttrs())

	// --- A session with mixed outcomes ----------------------------------
	sess, err := core.NewSession(pair, db)
	if err != nil {
		log.Fatal(err)
	}
	ops := []core.UpdateOp{
		core.Insert(relation.Tuple{syms.Const("ann"), syms.Const("toys")}),
		core.Insert(relation.Tuple{syms.Const("zoe"), syms.Const("plants")}), // rejected
		core.Delete(relation.Tuple{syms.Const("ed"), syms.Const("toys")}),
		core.Replace(relation.Tuple{syms.Const("sue"), syms.Const("tools")},
			relation.Tuple{syms.Const("sue"), syms.Const("toys")}),
	}
	for _, op := range ops {
		d, err := sess.Apply(op)
		switch {
		case errors.Is(err, core.ErrRejected):
			fmt.Printf("%-8v %-24s REJECTED: %s\n", op.Kind, renderOp(op, syms), d.Reason)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-8v %-24s ok\n", op.Kind, renderOp(op, syms))
		}
	}
	fmt.Println("\nfinal database (complement π_DM never changed):")
	fmt.Println(sess.Database().Format(syms))

	// --- Multi-relation catalog ------------------------------------------
	u2 := attr.MustUniverse("E", "D", "M")
	ms, err := multirel.New(u2,
		[]dep.FD{
			dep.NewFD(u2.MustSet("E"), u2.MustSet("D")),
			dep.NewFD(u2.MustSet("D"), u2.MustSet("M")),
		},
		[]string{"EMP", "DEPT"},
		[]attr.Set{u2.MustSet("E", "D"), u2.MustSet("D", "M")},
	)
	if err != nil {
		log.Fatal(err)
	}
	in := ms.NewInstance()
	syms2 := value.NewSymbols()
	emp, _ := in.Relation("EMP")
	emp.InsertVals(syms2.Const("ed"), syms2.Const("toys"))
	emp.InsertVals(syms2.Const("bob"), syms2.Const("tools"))
	dept, _ := in.Relation("DEPT")
	dept.InsertVals(syms2.Const("toys"), syms2.Const("mo"))
	dept.InsertVals(syms2.Const("tools"), syms2.Const("tim"))

	ok, why := in.Consistent()
	fmt.Printf("multi-relation instance consistent: %v %s\n", ok, why)
	fmt.Println("universal instance (EMP ⋈ DEPT):")
	fmt.Println(in.Join().Format(syms2))
	em := u2.MustSet("E", "M")
	fmt.Printf("view π_EM of the join has %d tuples\n", in.ViewInstance(em).Len())
	fmt.Printf("(ED, DM) complementary over the decomposition: %v\n",
		ms.Complementary(u2.MustSet("E", "D"), u2.MustSet("D", "M")))
	fmt.Printf("(EM, DM) complementary over the decomposition: %v\n",
		ms.Complementary(em, u2.MustSet("D", "M")))
	err = ms.TranslateInsert(u2.MustSet("E", "D"), u2.MustSet("D", "M"), nil, nil)
	fmt.Printf("update translation: %v\n", err)
}

func renderOp(op core.UpdateOp, syms *value.Symbols) string {
	out := "(" + syms.Name(op.Tuple[0]) + ", " + syms.Name(op.Tuple[1]) + ")"
	if op.Kind == core.UpdateReplace {
		out += " → (" + syms.Name(op.With[0]) + ", " + syms.Name(op.With[1]) + ")"
	}
	return out
}
