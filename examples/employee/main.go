// Employee–Department–Manager: the paper's §2 running example, end to
// end. Demonstrates:
//
//   - the two complements of π_ED (DM and EM) and how the choice of
//     complement assigns different semantics to the same view update;
//   - Rissanen independence vs. complementarity: (ED, EM) is a
//     complementary decomposition that is *not* independent;
//   - a full insert/delete/replace session under constant complement DM;
//   - Theorem 6: letting the system find a complement that makes a
//     desired update translatable.
package main

import (
	"fmt"
	"log"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/workload"
)

func main() {
	e := workload.NewEDM()
	schema, syms := e.Schema, e.Syms
	u := schema.Universe()

	db := relation.New(u.All())
	for _, row := range [][]string{
		{"ed", "toys", "mo"},
		{"flo", "toys", "mo"},
		{"bob", "tools", "tim"},
		{"sue", "tools", "tim"},
	} {
		if err := db.InsertNamed(syms, map[string]string{"E": row[0], "D": row[1], "M": row[2]}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("R:")
	fmt.Println(db.Format(syms))

	// --- Two complements for the same view -----------------------------
	fmt.Println("complements of π_ED:")
	fmt.Printf("  DM: %v\n", core.Complementary(schema, e.ED, e.DM))
	fmt.Printf("  EM: %v\n", core.Complementary(schema, e.ED, e.EM))

	// The same update means different things under different complements:
	// moving ed to tools.
	t1 := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	t2 := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	view := db.Project(e.ED)

	pairDM := core.MustPair(schema, e.ED, e.DM)
	dm, err := pairDM.DecideReplace(view, t1, t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplace (ed,toys)→(ed,tools) under constant DM: %v (%s)\n",
		dm.Translatable, dm.Reason)
	if dm.Translatable {
		out, err := pairDM.ApplyReplace(db, t1, t2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("ed now reports to tools' manager tim (manager table untouched):")
		fmt.Println(out.Format(syms))
	}

	pairEM := core.MustPair(schema, e.ED, e.EM)
	em, err := pairEM.DecideReplace(view, t1, t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replace (ed,toys)→(ed,tools) under constant EM: %v (%s)\n",
		em.Translatable, em.Reason)
	// Under constant EM the update is rejected: ed's manager is pinned by
	// the complement, but tools is managed by tim ≠ mo, so no legal
	// database implements the update without touching EM.

	// --- Independence vs complementarity --------------------------------
	// (ED, EM) is complementary but NOT independent in Rissanen's sense:
	// joining arbitrary legal ED- and EM-instances can violate D → M.
	vx := relation.New(e.ED)
	vx.InsertVals(syms.Const("pat"), syms.Const("toys"))
	vx.InsertVals(syms.Const("kim"), syms.Const("toys"))
	vy := relation.New(e.EM)
	vy.InsertVals(syms.Const("pat"), syms.Const("mo"))
	vy.InsertVals(syms.Const("kim"), syms.Const("tim"))
	joined := vx.Join(vy)
	legal, bad := schema.Legal(joined)
	fmt.Printf("\nindependence counterexample: π_ED ⋈ π_EM legal? %v (violates %v)\n", legal, bad)

	// --- A session under constant DM ------------------------------------
	fmt.Println("\nsession under constant DM:")
	session := db.Clone()
	steps := []struct {
		kind string
		a, b relation.Tuple
	}{
		{"insert", relation.Tuple{syms.Const("ann"), syms.Const("toys")}, nil},
		{"insert", relation.Tuple{syms.Const("joe"), syms.Const("tools")}, nil},
		{"delete", relation.Tuple{syms.Const("flo"), syms.Const("toys")}, nil},
		{"replace", relation.Tuple{syms.Const("ann"), syms.Const("toys")},
			relation.Tuple{syms.Const("ann"), syms.Const("tools")}},
	}
	for _, st := range steps {
		v := session.Project(e.ED)
		var d *core.Decision
		var err error
		switch st.kind {
		case "insert":
			if d, err = pairDM.DecideInsert(v, st.a); err == nil && d.Translatable {
				session, err = pairDM.ApplyInsert(session, st.a)
			}
		case "delete":
			if d, err = pairDM.DecideDelete(v, st.a); err == nil && d.Translatable {
				session, err = pairDM.ApplyDelete(session, st.a)
			}
		case "replace":
			if d, err = pairDM.DecideReplace(v, st.a, st.b); err == nil && d.Translatable {
				session, err = pairDM.ApplyReplace(session, st.a, st.b)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s → %s\n", st.kind, d.Reason)
	}
	fmt.Println("\nfinal database:")
	fmt.Println(session.Format(syms))
	fmt.Println("complement π_DM stayed constant:",
		session.Project(e.DM).Equal(db.Project(e.DM)))

	// --- Theorem 6: find a complement for a desired update --------------
	wish := relation.Tuple{syms.Const("amy"), syms.Const("toys")}
	res, err := core.FindInsertComplement(schema, e.ED, session.Project(e.ED), wish, core.TestExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 6: complement making insert(amy, toys) translatable: found=%v Y=%v (%d tests)\n",
		res.Found, res.Complement, res.Tests)
}
