// Succinct views and the hardness frontier (§3.2). A view presented as a
// union of Cartesian products can denote exponentially more tuples than
// its description size; Theorems 4, 5 and 7 show translatability
// questions jump to Π₂ᵖ/co-NP/NP hardness under that encoding. This
// example builds the three reduction instances from a small 3-CNF
// formula, shows the compression, and validates each theorem's
// equivalence by brute-force expansion.
package main

import (
	"fmt"
	"log"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/logic"
	"github.com/constcomp/constcomp/internal/reductions"
)

func main() {
	g := logic.MustCNF(4,
		logic.Clause{1, 2, 3},
		logic.Clause{-1, -2, 4},
		logic.Clause{-3, -4, 2},
	)
	fmt.Println("G =", g)
	fmt.Println("satisfiable:", g.Satisfiable())

	// --- Theorem 5: Test 1 on succinct views is co-NP-complete ----------
	t5, err := reductions.BuildTheorem5(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 5 instance: |U| = %d, description size %d, denoted tuples %d\n",
		t5.Schema.Universe().Size(), t5.View.DescriptionSize(), t5.View.Len())
	pair5 := core.MustPair(t5.Schema, t5.X, t5.Y)
	d5, err := pair5.DecideInsertTest1(t5.View.Expand(), t5.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Test 1 accepts: %v (theorem: accepts iff G unsat = %v)\n",
		d5.Translatable, !g.Satisfiable())

	// --- Theorem 7: complement finding is NP-hard -----------------------
	t7, err := reductions.BuildTheorem7(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 7 instance: |U| = %d, description size %d, denoted tuples %d\n",
		t7.Schema.Universe().Size(), t7.View.DescriptionSize(), t7.View.Len())
	res, err := core.FindInsertComplement(t7.Schema, t7.X, t7.View.Expand(), t7.T, core.TestExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complement found: %v (theorem: iff G sat = %v)\n", res.Found, g.Satisfiable())
	if res.Found {
		fmt.Printf("witness complement: %v\n", res.Complement)
	}

	// --- Theorem 4: the Π₂ᵖ construction and a reproduction finding -----
	t4, err := reductions.BuildTheorem4(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTheorem 4 instance (k=2): |U| = %d, description size %d, denoted tuples %d\n",
		t4.Schema.Universe().Size(), t4.View.DescriptionSize(), t4.View.Len())
	pair4 := core.MustPair(t4.Schema, t4.X, t4.Y)
	d4, err := pair4.DecideInsert(t4.View.Expand(), t4.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact test: translatable=%v\n", d4.Translatable)
	fmt.Printf("∀x₁x₂ ∃x₃x₄ G = %v\n", g.ForallExists(2))
	fmt.Printf("chase-characterized predicate = %v\n", t4.ChasePredicts())
	fmt.Println("(reproduction finding: the literal Theorem 4 gadget decides the")
	fmt.Println(" chase predicate, which is weaker than ∀∃ G — see EXPERIMENTS.md)")

	// --- Compression scaling --------------------------------------------
	fmt.Println("\ncompression of the Theorem 7 view as n grows:")
	fmt.Printf("%4s %12s %14s\n", "n", "descr. size", "denoted tuples")
	for n := 4; n <= 16; n += 4 {
		clauses := make([]logic.Clause, 0, n-2)
		for i := 1; i+2 <= n; i++ {
			clauses = append(clauses, logic.Clause{logic.Lit(i), logic.Lit(i + 1), logic.Lit(i + 2)})
		}
		gn := logic.MustCNF(n, clauses...)
		t7n, err := reductions.BuildTheorem7(gn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %12d %14d\n", n, t7n.View.DescriptionSize(), t7n.View.SizeBound())
	}
}
