// Registrar: explicit functional dependencies (§5 of the paper). The
// schema stores Course, Student, Grade and the course's AverageGrade.
// The FD Course → AverageGrade holds, but more is true: the average is
// *computable* from the grades — the explicit functional dependency
//
//	Course Student Grade =>e AverageGrade
//
// with the averaging function as witness. EFDs change which views are
// complementary (Theorem 10): a view containing Course Student Grade has
// {Course} as a complement even though their union misses AverageGrade,
// because the missing column can be recomputed.
package main

import (
	"fmt"
	"log"
	"strconv"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func main() {
	u := attr.MustUniverse("Course", "Student", "Grade", "Avg")
	sigma := dep.MustParseSet(u, `
Course Student -> Grade
Course Student Grade =>e Avg
`)
	schema := core.MustSchema(u, sigma)
	syms := value.NewSymbols()

	db := relation.New(u.All())
	rows := [][]string{
		{"db", "ann", "90"},
		{"db", "bob", "70"},
		{"os", "ann", "60"},
		{"os", "cal", "90"},
	}
	// Compute each course's average — the EFD witness function.
	avg := courseAverages(rows)
	for _, r := range rows {
		if err := db.InsertNamed(syms, map[string]string{
			"Course": r[0], "Student": r[1], "Grade": r[2], "Avg": avg[r[0]],
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("R (Avg is derived data):")
	fmt.Println(db.Format(syms))

	// --- Theorem 10 ------------------------------------------------------
	x := u.MustSet("Course", "Student", "Grade")
	yEFD := u.MustSet("Course")
	fmt.Printf("X = %v, Y = %v\n", x, yEFD)
	fmt.Printf("complementary with the EFD: %v\n", core.Complementary(schema, x, yEFD))

	// Without the EFD (plain FD only), the same pair fails: Avg is
	// functionally determined but not computable, so information is lost.
	plain := core.MustSchema(u, dep.MustParseSet(u, "Course Student -> Grade\nCourse Student Grade -> Avg"))
	fmt.Printf("complementary with only the plain FD: %v\n", core.Complementary(plain, x, yEFD))

	// --- EFD implication (Propositions 1 and 2) -------------------------
	q := dep.NewEFD(u.MustSet("Course", "Student"), u.MustSet("Avg"))
	fmt.Printf("Σ ⊨ %v: %v (needs Grade to compute the average)\n", q, core.ImpliesEFD(schema, q))
	q2 := dep.NewEFD(u.MustSet("Course", "Student", "Grade"), u.MustSet("Avg"))
	fmt.Printf("Σ ⊨ %v: %v\n", q2, core.ImpliesEFD(schema, q2))

	// --- Reconstruction with the witness --------------------------------
	// π_X(R) and π_Y(R) determine R: join covers X ∪ Y, then the witness
	// recomputes Avg.
	vx := db.Project(x)
	joined := vx // X ∪ Y = X here since Course ⊆ X
	rebuilt := relation.New(u.All())
	gradeCol := joined.Col(mustID(u, "Grade"))
	courseCol := joined.Col(mustID(u, "Course"))
	studentCol := joined.Col(mustID(u, "Student"))
	// Recompute averages from the projected grades (the witness f).
	sums := map[value.Value][2]int{}
	for _, t := range joined.Tuples() {
		g, _ := strconv.Atoi(syms.Name(t[gradeCol]))
		s := sums[t[courseCol]]
		sums[t[courseCol]] = [2]int{s[0] + g, s[1] + 1}
	}
	for _, t := range joined.Tuples() {
		s := sums[t[courseCol]]
		a := syms.Const(strconv.Itoa(s[0] / s[1]))
		nt := make(relation.Tuple, 4)
		nt[mustCol(rebuilt, u, "Course")] = t[courseCol]
		nt[mustCol(rebuilt, u, "Student")] = t[studentCol]
		nt[mustCol(rebuilt, u, "Grade")] = t[gradeCol]
		nt[mustCol(rebuilt, u, "Avg")] = a
		rebuilt.Insert(nt)
	}
	fmt.Printf("\nreconstructed R equals stored R: %v\n", rebuilt.Equal(db))
}

func courseAverages(rows [][]string) map[string]string {
	sums := map[string][2]int{}
	for _, r := range rows {
		g, _ := strconv.Atoi(r[2])
		s := sums[r[0]]
		sums[r[0]] = [2]int{s[0] + g, s[1] + 1}
	}
	out := map[string]string{}
	for c, s := range sums {
		out[c] = strconv.Itoa(s[0] / s[1])
	}
	return out
}

func mustID(u *attr.Universe, name string) attr.ID {
	id, ok := u.Lookup(name)
	if !ok {
		panic(name)
	}
	return id
}

func mustCol(r *relation.Relation, u *attr.Universe, name string) int {
	return r.Col(mustID(u, name))
}
