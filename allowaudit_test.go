package constcomp

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/analysis"
)

// allowInventory is the audited set of //constvet:allow exemptions in
// the repository, keyed "path#analyzer" with the number of allows of
// that analyzer in that file. Every entry earned its place with a
// written justification; adding a new allow means updating this table
// in the same diff, so an exemption can never slip in as a side effect.
// Test files and analyzer fixtures (testdata/) are exempt from the
// pin — the loader does not lint them.
var allowInventory = map[string]int{
	"cmd/loadgen/main.go#rawgo":                1,
	"internal/chase/depbasis.go#budgetloop":    1,
	"internal/chase/incremental.go#budgetloop": 1,
	"internal/chase/instance.go#budgetloop":    2,
	"internal/chase/maintained.go#budgetloop":  2,
	"internal/chase/tableau.go#budgetloop":     1,
	"internal/core/incremental.go#cachebound":  2,
	"internal/core/insert.go#cachebound":       2,
	"internal/logic/logic.go#budgetloop":       2,
	"internal/serve/serve.go#deadlineflow":     11,
	"internal/serve/serve.go#lockhold":         2,
	"internal/serve/serve.go#rawgo":            2,
}

// TestConstvetAllowAudit walks every non-test Go file and checks the
// //constvet:allow discipline: each marker names at least one analyzer,
// carries a non-empty `-- reason`, and appears in allowInventory. The
// reverse direction holds too — a pinned entry whose allows disappeared
// is flagged so the table stays exact.
func TestConstvetAllowAudit(t *testing.T) {
	// registered is built from the live analyzer registry, so a new
	// analyzer is covered by this audit the moment it lands in All():
	// allows naming it are inventoried and typos in allow names fail.
	registered := map[string]bool{}
	for _, a := range analysis.All() {
		registered[a.Name] = true
	}
	found := map[string]int{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		allows, err := fileAllows(path)
		if err != nil {
			return err
		}
		for _, a := range allows {
			if len(a.names) == 0 {
				t.Errorf("%s:%d: //constvet:allow names no analyzer", path, a.line)
			}
			if a.reason == "" {
				t.Errorf("%s:%d: //constvet:allow without `-- reason`: every exemption must say why", path, a.line)
			}
			for _, n := range a.names {
				if !registered[n] {
					t.Errorf("%s:%d: //constvet:allow names unknown analyzer %q (registered: see analysis.All)", path, a.line, n)
				}
				found[filepath.ToSlash(path)+"#"+n]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for k := range found {
		keys[k] = true
	}
	for k := range allowInventory {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		got, want := found[k], allowInventory[k]
		switch {
		case got > want:
			t.Errorf("%s: %d //constvet:allow line(s), inventory pins %d — new exemptions must be added to allowInventory with intent", k, got, want)
		case got < want:
			t.Errorf("%s: %d //constvet:allow line(s), inventory pins %d — stale inventory entry, prune it", k, got, want)
		}
	}
}

type allowMark struct {
	line   int
	names  []string
	reason string
}

// fileAllows extracts the //constvet:allow markers from one file's
// comments. Only comments whose text begins with the marker count —
// prose that merely mentions the syntax (analyzer docs, error messages)
// does not.
func fileAllows(path string) ([]allowMark, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	var out []allowMark
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "constvet:allow")
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			m := allowMark{line: fset.Position(c.Pos()).Line}
			names, reason, hasReason := strings.Cut(rest, "--")
			m.names = strings.Fields(names)
			if hasReason {
				m.reason = strings.TrimSpace(reason)
			}
			out = append(out, m)
		}
	}
	return out, nil
}
