package constcomp

// Byte-level equivalence for the delta-scoped view refresh
// (core.Session.ViewRef / patchMView): the maintained reader view —
// patched per applied op, never re-projected on the happy path — must
// render byte-identically to a full re-projection of the database at
// every step, across mixed op streams (inserts, Thm-8 deletes, Thm-9
// replacements, identity translations, rejections), forced
// invalidations, incremental-path toggles, and a serving-pipeline
// divergence/resync. The published ref must also be immutable: a ref
// handed to a reader keeps rendering the same bytes while later ops
// patch the session's own image.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
	"github.com/constcomp/constcomp/internal/workload"
)

// renderView serializes a view deterministically: rows sorted on all
// attributes, constants by name, tab/newline separated. Two relations
// with the same tuples render to the same bytes, so bytes.Equal is set
// equality made observable.
func renderView(r *relation.Relation, syms *value.Symbols) []byte {
	var buf bytes.Buffer
	for _, t := range r.Sorted(r.Attrs()) {
		for i, v := range t {
			if i > 0 {
				buf.WriteByte('\t')
			}
			buf.WriteString(syms.Name(v))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestViewRefEquivalenceRandomized drives 1500 mixed ops through one
// session and checks after every op that ViewRef() renders to exactly
// the bytes of Database().Project(ED) — with invalidations and
// incremental toggles sprinkled in so the patched, rebuilt, and
// re-projected images all cross-check.
func TestViewRefEquivalenceRandomized(t *testing.T) {
	e := workload.NewEDM()
	pair := core.MustPair(e.Schema, e.ED, e.DM)
	sess, err := core.NewSession(pair, e.Instance(48, 8))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	emp := func() string { return fmt.Sprintf("w%03d", rng.Intn(64)) }
	type held struct {
		ref   *relation.Relation
		bytes []byte
		at    int
	}
	var snapshots []held
	applied, identity, rejected := 0, 0, 0
	for i := 0; i < 1500; i++ {
		switch rng.Intn(20) {
		case 0:
			sess.InvalidateDeltas() // drops the maintained image too
		case 1:
			sess.SetIncremental(false)
			sess.SetIncremental(true)
		}
		var op core.UpdateOp
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			op = core.Insert(e.NewEmployeeTuple(emp(), rng.Intn(8)))
		case 4, 5, 6:
			op = core.Delete(e.NewEmployeeTuple(emp(), rng.Intn(8)))
		case 7, 8:
			op = core.Replace(e.NewEmployeeTuple(emp(), rng.Intn(8)),
				e.NewEmployeeTuple(emp(), rng.Intn(8)))
		default:
			// No such department: condition (a) rejection; the view must
			// not move.
			op = core.Insert(e.NewEmployeeTuple(emp(), 8+rng.Intn(3)))
		}
		d, err := sess.Apply(op)
		switch {
		case err == nil && d != nil && d.Reason == core.ReasonIdentity:
			applied, identity = applied+1, identity+1
		case err == nil:
			applied++
		default:
			rejected++
		}

		got := renderView(sess.ViewRef(), e.Syms)
		want := renderView(sess.Database().Project(e.ED), e.Syms)
		if !bytes.Equal(got, want) {
			t.Fatalf("op %d (%v, err=%v): patched view diverged from re-projection\npatched:\n%s\nprojected:\n%s",
				i, op.Kind, err, got, want)
		}
		// Hold a few refs and re-render them later: published refs are
		// immutable under subsequent patches (copy-on-write).
		if i%250 == 0 {
			snapshots = append(snapshots, held{ref: sess.ViewRef(), bytes: got, at: i})
		}
	}
	for _, s := range snapshots {
		if got := renderView(s.ref, e.Syms); !bytes.Equal(got, s.bytes) {
			t.Errorf("ref held at op %d mutated under later patches", s.at)
		}
	}
	// The stream must actually have exercised every outcome class.
	if applied == 0 || identity == 0 || rejected == 0 {
		t.Fatalf("weak stream: %d applied (%d identity), %d rejected", applied, identity, rejected)
	}
}

// TestViewRefEquivalencePipelineResync runs the check through the
// serving pipeline: a write behind the pipeline's back forces a
// speculation divergence and resync (which invalidates the maintained
// image mid-stream); after the stream drains, the store session's
// patched view and the pipeline's last published view must both render
// to the bytes of a full re-projection.
func TestViewRefEquivalencePipelineResync(t *testing.T) {
	reg := obs.NewRegistry()
	serve.SetMetrics(reg)
	defer serve.SetMetrics(nil)

	e := workload.NewEDM()
	pair := core.MustPair(e.Schema, e.ED, e.DM)
	st, err := store.Create(store.NewMemFS(), pair, e.Instance(16, 4), e.Syms,
		store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := serve.New(st, serve.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := pipe.Apply(core.Insert(e.NewEmployeeTuple(fmt.Sprintf("pre%d", i), i%4))); err != nil {
			t.Fatal(err)
		}
	}
	// Behind the pipeline's back: its scratch decider still sees emp0,
	// so the next op's speculation diverges and the committer resyncs,
	// dropping decision seeds, deltas, and the maintained view image.
	if _, err := st.Apply(core.Delete(e.NewEmployeeTuple("emp0", 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Apply(core.Insert(e.NewEmployeeTuple("emp0", 1))); err != nil {
		t.Fatal(err)
	}

	// Warm read-side publishing now: the direct st.Apply above is only
	// safe while the committer leaves the session alone between batches,
	// which lazy publishing guarantees. From here on the committer
	// publishes after every batch.
	pipe.Published()

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		w := fmt.Sprintf("post%d", rng.Intn(32))
		var op core.UpdateOp
		switch rng.Intn(3) {
		case 0:
			op = core.Insert(e.NewEmployeeTuple(w, rng.Intn(4)))
		case 1:
			op = core.Delete(e.NewEmployeeTuple(w, rng.Intn(4)))
		default:
			op = core.Replace(e.NewEmployeeTuple(w, rng.Intn(4)),
				e.NewEmployeeTuple(w, rng.Intn(4)))
		}
		_, _ = pipe.Apply(op) // rejections are part of the stream
	}

	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains the queue; the last published view is final.
	published, _, _ := pipe.Published()
	want := renderView(st.Database().Project(e.ED), e.Syms)
	if got := renderView(st.ViewRef(), e.Syms); !bytes.Equal(got, want) {
		t.Fatal("store session's patched view diverged from re-projection after resync")
	}
	if published == nil {
		t.Fatal("pipeline never published a view")
	}
	if got := renderView(published, e.Syms); !bytes.Equal(got, want) {
		t.Fatal("pipeline's final published view diverged from re-projection")
	}
	if reg.Snapshot().Counters["serve_divergence_total"] == 0 {
		t.Fatal("behind-the-back write never forced a resync; test exercised nothing")
	}
}
