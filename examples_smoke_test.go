package constcomp

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary, checking exit
// status and a fingerprint line of each one's output. Guards the
// examples against API drift.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example subprocesses in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "minimal complement of ED"},
		{"./examples/employee", "independence counterexample"},
		{"./examples/registrar", "reconstructed R equals stored R: true"},
		{"./examples/succinct", "compression of the Theorem 7 view"},
		{"./examples/catalog", "complement recommendations for π_ED"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("%s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}

// TestCommandsSmoke runs the analysis CLIs against the checked-in
// testdata.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI subprocesses in -short mode")
	}
	t.Run("complement", func(t *testing.T) {
		out, err := exec.Command("go", "run", "./cmd/complement",
			"-schema", "testdata/edm.schema", "-view", "E D", "-all").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "minimum complement") {
			t.Errorf("unexpected output:\n%s", out)
		}
	})
	t.Run("prove", func(t *testing.T) {
		out, err := exec.Command("go", "run", "./cmd/prove",
			"-schema", "testdata/edm.schema", "E -> M").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "verified") {
			t.Errorf("unexpected output:\n%s", out)
		}
	})
	t.Run("experiments-list", func(t *testing.T) {
		out, err := exec.Command("go", "run", "./cmd/experiments", "-list").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, id := range []string{"E1", "E17", "A5"} {
			if !strings.Contains(string(out), id) {
				t.Errorf("experiment %s missing from -list:\n%s", id, out)
			}
		}
	})
}
