module github.com/constcomp/constcomp

go 1.22
